"""Hash indexes over tables.

The paper's experimental setup gives the fact table a composite index on
``(storeID, itemID, date)`` and every summary table a composite index on its
group-by columns; the refresh function does one index lookup per
summary-delta tuple.  :class:`HashIndex` provides exactly that operation:
map a composite key (a tuple of column values) to the positions of matching
rows.

Indexes are maintained incrementally by :class:`~repro.relational.table.Table`
as rows are inserted and deleted, so a refresh run pays only per-touched-row
index maintenance, as a real RDBMS would.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import TableError
from ..obs.tracing import current_span
from .stats import collector


class HashIndex:
    """A (possibly composite, possibly unique) hash index.

    The index maps key tuples to *row slots* — integer positions into the
    owning table's internal row list.  Deleted slots are tombstoned by the
    table; the index removes slots eagerly so lookups never see dead rows.

    Parameters
    ----------
    columns:
        The indexed column names, in key order.
    positions:
        The tuple positions of those columns in the owning table's schema.
    unique:
        When true, inserting a second row with an existing key raises
        :class:`~repro.errors.TableError`.  Dimension-table primary keys use
        this; fact tables and summary tables do not.
    """

    __slots__ = ("columns", "_positions", "unique", "_buckets")

    def __init__(self, columns: Sequence[str], positions: Sequence[int], unique: bool = False):
        if not columns:
            raise TableError("an index must cover at least one column")
        self.columns = tuple(columns)
        self._positions = tuple(positions)
        self.unique = unique
        self._buckets: dict[tuple[Any, ...], list[int]] = {}

    def key_of(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Extract this index's key tuple from a full row."""
        positions = self._positions
        return tuple(row[p] for p in positions)

    def add(self, row: Sequence[Any], slot: int) -> None:
        """Register *row* stored at *slot*."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [slot]
        else:
            if self.unique:
                raise TableError(
                    f"unique index on {self.columns} violated by key {key!r}"
                )
            bucket.append(slot)

    def remove(self, row: Sequence[Any], slot: int) -> None:
        """Unregister *row* previously stored at *slot*."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if not bucket:
            raise TableError(f"index on {self.columns}: key {key!r} not present")
        try:
            bucket.remove(slot)
        except ValueError:
            raise TableError(
                f"index on {self.columns}: slot {slot} not registered for key {key!r}"
            ) from None
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: tuple[Any, ...]) -> list[int]:
        """Return the row slots whose key equals *key* (empty when absent)."""
        stats = collector()
        if stats is not None:
            stats.add("index_lookups")
        span = current_span()
        if span is not None:
            span.add("index_lookups")
        return self._buckets.get(key, [])

    def lookup_one(self, key: tuple[Any, ...]) -> int | None:
        """Return the single slot for *key*, or ``None`` when absent.

        Raises :class:`~repro.errors.TableError` when more than one row
        matches — callers use this for keys they expect to be unique (e.g.
        a summary table's group-by columns).
        """
        stats = collector()
        if stats is not None:
            stats.add("index_lookups")
        span = current_span()
        if span is not None:
            span.add("index_lookups")
        bucket = self._buckets.get(key)
        if bucket is None:
            return None
        if len(bucket) > 1:
            raise TableError(
                f"index on {self.columns}: key {key!r} matches {len(bucket)} rows, "
                "expected at most one"
            )
        return bucket[0]

    def keys(self) -> Iterable[tuple[Any, ...]]:
        """Iterate over the distinct keys currently present."""
        return self._buckets.keys()

    def __len__(self) -> int:
        """The number of distinct keys."""
        return len(self._buckets)

    def clear(self) -> None:
        """Drop all entries (used when a table is truncated or rebuilt)."""
        self._buckets.clear()
