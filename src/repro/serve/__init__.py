"""Concurrent query serving over versioned summary tables.

The paper confines maintenance to an exclusive nightly batch window so
readers can never observe a half-refreshed summary table.  Epoch-versioned
views (:class:`~repro.views.materialize.ViewVersion`) remove that
restriction: maintenance publishes each refreshed table with a single
reference swap, so this package can answer aggregate queries *while*
propagate/refresh runs, each query pinned to one consistent epoch.
"""

from .server import (
    QueryResultCache,
    QueryServer,
    ServeStats,
    query_fingerprint,
)

__all__ = [
    "QueryResultCache",
    "QueryServer",
    "ServeStats",
    "query_fingerprint",
]
