"""The thread-pool query server: concurrent reads during maintenance.

:class:`QueryServer` answers :class:`~repro.query.router.AggregateQuery`
objects through the warehouse's :class:`~repro.query.router.QueryRouter`
on a thread pool.  Safety under concurrent maintenance rests on two
mechanisms, both upstream of this module:

* the router pins the routed view's current
  :class:`~repro.views.materialize.ViewVersion` into the plan, so one
  query evaluates against one epoch no matter how many versioned
  refreshes publish mid-scan;
* versioned refresh (:func:`repro.core.transactional.refresh_versioned`)
  never mutates a published table, so a pinned epoch stays internally
  consistent for as long as any reader references it.

On top of that the server adds a hot-query result cache keyed by the
query's structural fingerprint and stamped with the source view's
``(epoch, refresh_count)`` pair: a published swap bumps the epoch, an
in-place refresh bumps the freshness counter, and either way the stale
entry stops matching — the cache can never serve an answer from a
superseded view state.

Queries that no summary table can answer fall back to scanning the base
fact table, which is *not* versioned; during a maintenance cycle those
reads may observe base changes mid-apply.  Fallback results are therefore
never cached, and concurrent-serving guarantees apply to view-routed
queries only (the paper's motivating case: summary tables exist precisely
so queries avoid the fact table).

Returned tables are shared — a cached result may be handed to many
callers — and must be treated as read-only.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..obs import metrics as obs_metrics
from ..obs import serving as obs_serving
from ..obs import tracing
from ..query.router import AggregateQuery, QueryRouter
from ..relational.table import Table
from ..warehouse.catalog import Warehouse

#: Cache stamp: (view name, published epoch, in-place refresh count).
CacheStamp = tuple[str, int, int]


def query_fingerprint(query: AggregateQuery) -> tuple:
    """Structural identity of a query, usable as a cache key.

    Two queries with the same fact table, group-by, aggregate outputs,
    and dimension joins are the same query; aggregate functions render
    deterministically (``repr`` is their SQL-ish rendering), so the
    fingerprint is stable across separately-constructed equal queries.
    """
    definition = query.definition
    return (
        definition.fact.name,
        tuple(definition.group_by),
        tuple(
            (output.name, repr(output.function))
            for output in definition.aggregates
        ),
        tuple(definition.dimensions),
        repr(definition.where) if definition.where is not None else None,
    )


class QueryResultCache:
    """A small LRU of answered queries, stamped with view versions.

    ``get`` returns a hit only when the caller's *stamp* — derived from
    the routed view's current epoch and refresh count — equals the stamp
    the entry was stored under; anything else is treated as a miss and
    the stale entry is dropped.  All operations take one lock, so the
    cache is safe under the server's thread pool.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple[CacheStamp, Table]]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple, stamp: CacheStamp) -> Table | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            cached_stamp, table = entry
            if cached_stamp != stamp:
                # The view moved on (new epoch or in-place refresh);
                # the entry can never become valid again.
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return table

    def put(self, key: tuple, stamp: CacheStamp, table: Table) -> None:
        with self._lock:
            self._entries[key] = (stamp, table)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass
class ServeStats:
    """What one server has done since construction (thread-safe)."""

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    base_fallbacks: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note(self, hit: bool | None, base_fallback: bool) -> None:
        with self._lock:
            self.queries += 1
            if hit is True:
                self.cache_hits += 1
            elif hit is False:
                self.cache_misses += 1
            if base_fallback:
                self.base_fallbacks += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "queries": self.queries,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "base_fallbacks": self.base_fallbacks,
            }

    @property
    def hit_rate(self) -> float:
        with self._lock:
            probes = self.cache_hits + self.cache_misses
            return self.cache_hits / probes if probes else 0.0


class QueryServer:
    """Answers aggregate queries concurrently, including during refresh.

    Usable as a context manager; ``close()`` (or leaving the ``with``
    block) shuts the pool down.  ``answer`` runs in the calling thread —
    it is what pool workers execute — so the server composes with
    callers that bring their own threads (the concurrency battery does).

    Telemetry (see :mod:`repro.obs.serving`): every query carries a
    process-unique request id that the router's plan/eval spans tag
    themselves with; latency, cache outcome, and source-view counters
    land in the metrics registry *unconditionally* — ``REPRO_TRACE``
    gates span emission only — and the slowest queries are retained in
    :attr:`slow_queries`.  A *staleness_slo_s* (or the
    ``REPRO_STALENESS_SLO_S`` environment default) counts
    ``serve.slo_violations`` whenever a query is answered from a view
    staler than the SLO.  ``expose_http`` embeds a
    :class:`~repro.obs.serving.MetricsExporter` serving ``/metrics``,
    ``/status``, and ``/slow`` for the server's lifetime (``True`` binds
    an ephemeral port; an integer binds that port).
    """

    def __init__(
        self,
        warehouse: Warehouse,
        max_workers: int = 4,
        cache_capacity: int = 128,
        staleness_slo_s: float | None = None,
        slow_query_capacity: int = 32,
        expose_http: bool | int | None = None,
    ):
        self.warehouse = warehouse
        self.router = QueryRouter(warehouse)
        self.cache = QueryResultCache(cache_capacity)
        self.stats = ServeStats()
        self.staleness_slo_s = obs_serving.resolve_staleness_slo(
            staleness_slo_s
        )
        self.slow_queries = obs_serving.SlowQuerySampler(slow_query_capacity)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self.exporter: obs_serving.MetricsExporter | None = None
        # Identity checks, not ``in (None, False)``: port 0 (== False)
        # legitimately requests an ephemeral port.
        if expose_http is not None and expose_http is not False:
            port = 0 if expose_http is True else int(expose_http)
            self.exporter = obs_serving.MetricsExporter(
                warehouse=warehouse,
                sampler=self.slow_queries,
                server=self,
                port=port,
            ).start()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        if self.exporter is not None:
            self.exporter.close()
            self.exporter = None

    def answer(
        self,
        query: AggregateQuery,
        use_cache: bool = True,
        request_id: int | None = None,
    ) -> Table:
        """Plan, consult the cache, and evaluate against a pinned epoch.

        *request_id* is normally assigned here; :meth:`submit` allocates
        it at submission time instead, so a trace ties the pool thread's
        work back to the submitting caller.
        """
        start = time.perf_counter()
        if request_id is None:
            request_id = obs_serving.next_request_id()
        with obs_serving.request_scope(request_id):
            with tracing.span(
                "serve.query", fact=query.definition.fact.name,
                request=request_id,
            ) as span:
                plan = self.router.plan(query)
                source = plan.source_view
                span.set_tag("source", source.name if source else "base")
                cacheable = use_cache and plan.uses_summary_table
                key: tuple | None = None
                stamp: CacheStamp | None = None
                if cacheable:
                    key = query_fingerprint(query)
                    stamp = (
                        source.name,
                        plan.source_epoch,
                        source.freshness.refresh_count,
                    )
                    cached = self.cache.get(key, stamp)
                    if cached is not None:
                        span.set_tag("cache", "hit")
                        self.stats.note(hit=True, base_fallback=False)
                        self._record(start, "hit", plan, request_id)
                        return cached
                result = self.router.answer_plan(plan)
                if cacheable:
                    self.cache.put(key, stamp, result)
                cache_state = "miss" if cacheable else "bypass"
                span.set_tag("cache", cache_state)
                self.stats.note(
                    hit=False if cacheable else None,
                    base_fallback=source is None,
                )
                self._record(start, cache_state, plan, request_id)
                return result

    def submit(self, query: AggregateQuery, use_cache: bool = True) -> Future:
        """Schedule one query on the pool; returns its future.

        The request id is allocated *now*, in submission order, and
        travels with the query onto whichever pool thread evaluates it.
        """
        request_id = obs_serving.next_request_id()
        return self._pool.submit(self.answer, query, use_cache, request_id)

    def answer_many(
        self, queries: Sequence[AggregateQuery] | Iterable[AggregateQuery],
        use_cache: bool = True,
    ) -> list[Table]:
        """Fan a batch of queries out on the pool; results in input order."""
        futures = [self.submit(query, use_cache) for query in queries]
        return [future.result() for future in futures]

    def _record(
        self, start: float, cache_state: str, plan, request_id: int
    ) -> None:
        """Record one answered query into the registry and the sampler.

        Unconditional by design: the metrics registry is always live, and
        a serving dashboard must not go dark because span recording
        (``REPRO_TRACE``) is off.  Only span emission follows the trace
        switch.
        """
        seconds = time.perf_counter() - start
        source = plan.source_view
        source_name = source.name if source is not None else "base"
        registry = obs_metrics.registry()
        registry.counter("serve.queries").inc()
        registry.counter(
            "serve.queries_by_source", labels={"source": source_name}
        ).inc()
        if cache_state == "hit":
            registry.counter("serve.cache_hits").inc()
        elif cache_state == "miss":
            registry.counter("serve.cache_misses").inc()
        if source is None:
            registry.counter("serve.base_fallbacks").inc()
        registry.histogram(
            "serve.latency_s", bounds=obs_metrics.LATENCY_BUCKETS_S
        ).observe(seconds)
        if source is not None:
            staleness = source.freshness.staleness_seconds()
            registry.gauge(
                "serve.staleness_seconds", labels={"view": source_name}
            ).set(round(staleness, 6))
            if (
                self.staleness_slo_s is not None
                and staleness > self.staleness_slo_s
            ):
                registry.counter("serve.slo_violations").inc()
                registry.counter(
                    "serve.slo_violations_by_view",
                    labels={"view": source_name},
                ).inc()
        self.slow_queries.record(obs_serving.SlowQuerySample(
            seconds=seconds,
            request_id=request_id,
            fact=plan.query.definition.fact.name,
            source=source_name,
            epoch=plan.source_epoch,
            cache=cache_state,
            ts=time.time(),
        ))
