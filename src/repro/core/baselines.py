"""Maintenance baselines the paper compares against.

Two alternatives to the summary-delta method:

* **Rematerialisation** — recompute each summary table from base data
  inside the batch window.  The naive per-view form lives here; the
  lattice-exploiting form the paper actually plots (derive lower views from
  higher ones) lives in :func:`repro.lattice.plan.rematerialize_with_lattice`.

* **Affected-group recomputation** — the classic delta-paradigm approach
  for aggregate views ([GMS93]/[GL95]-style): identify the groups touched
  by the change set, recompute exactly those groups from the (updated) base
  data, and splice them into the view with deletes + inserts.  Unlike the
  summary-delta method it must read the base table during the batch window,
  which is precisely the cost the paper's method avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..relational.aggregation import group_by as physical_group_by
from ..relational.expressions import col
from ..relational.operators import select
from ..relational.table import Table
from ..views.materialize import MaterializedView
from ..warehouse.batch import BatchReport, BatchWindowClock
from ..warehouse.changes import ChangeSet
from .refresh import RefreshStats


def rematerialize_views(
    views: Sequence[MaterializedView],
    clock: BatchWindowClock | None = None,
) -> BatchReport:
    """Recompute every view from base data (no lattice), offline."""
    clock = clock or BatchWindowClock()
    for view in views:
        with clock.offline(f"rematerialize:{view.name}"):
            view.rematerialize()
    return clock.report


@dataclass
class GroupRecomputeResult:
    """Outcome of one affected-group recomputation run."""

    affected_groups: int
    stats: RefreshStats
    report: BatchReport


def maintain_by_group_recompute(
    view: MaterializedView,
    changes: ChangeSet,
    apply_base_changes: bool = True,
    clock: BatchWindowClock | None = None,
) -> GroupRecomputeResult:
    """Delta-paradigm baseline: recompute the affected groups from base.

    Phase 1 (online) computes the set of affected group keys from the
    change set.  Phase 2 (offline) applies base changes, recomputes those
    groups in one pass over fact ⋈ dimensions, and splices the fresh rows
    into the view.
    """
    clock = clock or BatchWindowClock()
    definition = view.definition
    fact = definition.fact

    with clock.online(f"affected-groups:{view.name}"):
        affected = _affected_group_keys(view, changes)

    if apply_base_changes:
        with clock.offline("apply-base"):
            changes.apply_to(fact.table)

    stats = RefreshStats(delta_rows=len(affected))
    with clock.offline(f"group-recompute:{view.name}"):
        source = fact.join_dimensions(fact.table, definition.dimensions)
        if definition.where is not None:
            source = select(source, definition.where)
        key_positions = source.schema.positions(definition.group_by)
        filtered = Table(f"affected_{definition.name}", source.schema)
        for row in source.scan():
            if tuple(row[p] for p in key_positions) in affected:
                filtered.insert(row)
        aggregates = [
            (output.name,
             output.function.argument if output.function.argument is not None
             else col(source.schema.columns[0]),
             output.function.base_reducer())
            for output in definition.aggregates
        ]
        fresh = physical_group_by(filtered, definition.group_by, aggregates)

        arity = len(definition.group_by)
        fresh_by_key = {row[:arity]: row for row in fresh.scan()}
        index = view.group_key_index()
        for key in affected:
            slot = index.lookup_one(key) if index is not None else None
            new_row = fresh_by_key.get(key)
            if slot is not None and new_row is None:
                view.table.delete_slot(slot)
                stats.deleted += 1
            elif slot is not None:
                view.table.update_slot(slot, new_row)
                stats.updated += 1
            elif new_row is not None:
                view.table.insert(new_row)
                stats.inserted += 1
    return GroupRecomputeResult(
        affected_groups=len(affected), stats=stats, report=clock.report
    )


def _affected_group_keys(
    view: MaterializedView, changes: ChangeSet
) -> set[tuple[Any, ...]]:
    """Group keys of the view touched by the change set."""
    definition = view.definition
    keys: set[tuple[Any, ...]] = set()
    for rows in (changes.insertions, changes.deletions):
        if not len(rows):
            continue
        joined = definition.fact.join_dimensions(rows, definition.dimensions)
        if definition.where is not None:
            joined = select(joined, definition.where)
        positions = joined.schema.positions(definition.group_by)
        for row in joined.scan():
            keys.add(tuple(row[p] for p in positions))
    return keys
