"""Propagate for changes to dimension tables (paper, Section 4.1.4).

The paper sketches the technique: starting from the changes to a dimension
table, derive dimension-table-specific prepare-insertions /
prepare-deletions views (e.g. ``pi_items_SiC_sales`` joins ``pos`` with
``items_ins``), union them into prepare-changes, and aggregate as usual.

This module implements the sketch in full generality, including
*simultaneous* changes to the fact table and any number of dimension
tables.  Correctness comes from the bag-algebra expansion

    ⨂(R + ΔR) − ⨂R  =  Σ over non-empty subsets T of changed relations:
                          ⨂_{r∈T} ΔR_r  ⋈  ⨂_{r∉T} R_r

where each Δ carries per-row signs (+1 insertions, −1 deletions) and a
joined row's net sign is the product of its factors' signs.  A net sign of
+1 contributes like an insertion (Table 1's prepare-insertions sources), a
net sign of −1 like a deletion.  With only fact-table changes the expansion
degenerates to the ordinary prepare-changes view; with only one changed
dimension it degenerates to the paper's ``pi_items_…`` / ``pd_items_…``
views.

Everything here is evaluated against the *pre-update* warehouse state —
i.e. call it before applying any change set to base tables — so propagate
stays an online phase.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping

from ..errors import MaintenanceError
from ..obs.lineage import BatchLineage
from ..relational.aggregation import group_by
from ..relational.expressions import Case, Column, Expression, Literal, Mul
from ..relational.operators import hash_join, project, select, union_all
from ..relational.schema import Schema
from ..relational.table import Table
from ..views.definition import SummaryViewDefinition
from ..warehouse.changes import ChangeSet
from .deltas import MinMaxPolicy, SummaryDelta, del_column, ins_column, minmax_outputs
from .propagate import _delta_specs
from .prepare import source_column


def _sign_column(relation_name: str) -> str:
    return f"__sign_{relation_name}"


def _signed_changes(changes: ChangeSet, relation_name: str) -> Table:
    """Stack insertions (+1) and deletions (−1) with a sign column."""
    schema = Schema(list(changes.schema.columns) + [_sign_column(relation_name)])
    signed = Table(f"signed_{relation_name}", schema)
    for row in changes.insertions.scan():
        signed.insert(row + (1,))
    for row in changes.deletions.scan():
        signed.insert(row + (-1,))
    return signed


def prepare_changes_combined(
    definition: SummaryViewDefinition,
    fact_changes: ChangeSet | None,
    dimension_changes: Mapping[str, ChangeSet] | None = None,
    policy: MinMaxPolicy = MinMaxPolicy.PAPER,
) -> Table:
    """Prepare-changes for simultaneous fact and dimension changes.

    Returns a table shaped like the ordinary ``pc_`` view (group-bys plus
    aggregate-source columns, plus split columns under the SPLIT policy).
    Must be called against the pre-update warehouse state.
    """
    dimension_changes = dict(dimension_changes or {})
    for dimension_name in dimension_changes:
        if dimension_name not in definition.dimensions:
            raise MaintenanceError(
                f"view {definition.name!r} does not join dimension "
                f"{dimension_name!r}"
            )

    changed: list[str] = []
    if fact_changes is not None and fact_changes.size():
        changed.append("__fact__")
    changed.extend(
        name for name, change_set in dimension_changes.items() if change_set.size()
    )

    fact = definition.fact
    parts: list[Table] = []
    for subset_size in range(1, len(changed) + 1):
        for subset in combinations(changed, subset_size):
            parts.append(
                _subset_term(
                    definition, set(subset), fact_changes, dimension_changes, policy
                )
            )
    if not parts:
        # No changes at all: an empty, correctly-shaped pc table.
        empty = ChangeSet(fact.name, fact.table.schema)
        parts.append(
            _subset_term(definition, {"__fact__"}, empty, {}, policy)
        )
    return union_all(parts, name=f"pc_{definition.name}")


def _subset_term(
    definition: SummaryViewDefinition,
    delta_relations: set[str],
    fact_changes: ChangeSet | None,
    dimension_changes: Mapping[str, ChangeSet],
    policy: MinMaxPolicy,
) -> Table:
    """One term of the expansion: Δ for relations in *delta_relations*,
    old state for the rest, projected to signed aggregate sources."""
    fact = definition.fact
    sign_columns: list[str] = []

    if "__fact__" in delta_relations:
        if fact_changes is None:
            raise MaintenanceError("fact changes requested but none provided")
        current = _signed_changes(fact_changes, fact.name)
        sign_columns.append(_sign_column(fact.name))
    else:
        current = fact.table

    for dimension_name in definition.dimensions:
        fk = fact.foreign_key_for(dimension_name)
        if dimension_name in delta_relations:
            dim_side = _signed_changes(dimension_changes[dimension_name], dimension_name)
            sign_columns.append(_sign_column(dimension_name))
        else:
            dim_side = fk.dimension.table
        current = hash_join(current, dim_side, on=[(fk.column, fk.dimension.key)])

    if definition.where is not None:
        current = select(current, definition.where)

    net_sign: Expression = Literal(1)
    for sign_column in sign_columns:
        net_sign = Mul(net_sign, Column(sign_column))

    outputs: list[tuple[str, Expression]] = [
        (attribute, Column(attribute)) for attribute in definition.group_by
    ]
    positive = net_sign.gt(Literal(0))
    for output in definition.aggregates:
        outputs.append(
            (
                source_column(output.name),
                _signed_source(output, net_sign, positive),
            )
        )
    if policy is MinMaxPolicy.SPLIT:
        for output in minmax_outputs(definition):
            value = output.function.argument
            outputs.append(
                (ins_column(output.name),
                 Case([(positive, value)], Literal(None)))
            )
            outputs.append(
                (del_column(output.name),
                 Case([(positive, Literal(None))], value))
            )
    return project(current, outputs)


def _signed_source(output, net_sign: Expression, positive: Expression) -> Expression:
    """The aggregate-source expression under a ±1 net sign.

    Multiplying by the sign reproduces Table 1 for count/sum sources; MIN
    and MAX sources are the raw value regardless of sign (the delta keeps
    the extremum over *all* changed values, as in the paper).
    """
    kind = output.function.kind
    if kind == "count_star":
        return net_sign
    if kind == "count":
        return Case(
            [(output.function.argument.is_null(), Literal(0))], net_sign
        )
    if kind == "sum":
        return Mul(output.function.argument, net_sign)
    if kind in ("min", "max"):
        return output.function.argument
    raise MaintenanceError(f"unsupported aggregate kind {kind!r}")


def compute_summary_delta_combined(
    definition: SummaryViewDefinition,
    fact_changes: ChangeSet | None,
    dimension_changes: Mapping[str, ChangeSet] | None = None,
    policy: MinMaxPolicy = MinMaxPolicy.PAPER,
) -> SummaryDelta:
    """Summary delta under simultaneous fact and dimension changes.

    When the view computes MIN/MAX and dimension changes are present, the
    policy is upgraded to ``SPLIT`` automatically: the expansion's cross
    terms can cancel contributions within a group, and a single combined
    extremum column (the PAPER representation) cannot tell a cancelled
    value from a surviving one.  The SPLIT delta keeps deletion-side
    footprints, letting refresh recompute exactly the affected groups —
    including groups new to the view.
    """
    if (
        policy is MinMaxPolicy.PAPER
        and dimension_changes
        and any(change_set.size() for change_set in dimension_changes.values())
        and minmax_outputs(definition)
    ):
        policy = MinMaxPolicy.SPLIT
    pc = prepare_changes_combined(
        definition, fact_changes, dimension_changes, policy
    )
    delta_rows = group_by(
        pc,
        definition.group_by,
        _delta_specs(definition, policy),
        name=f"sd_{definition.name}",
    )
    # The combined delta folds fact *and* dimension batches: its lineage
    # is the union of every contributing change set's.
    lineage = BatchLineage()
    if fact_changes is not None:
        lineage.merge(fact_changes.lineage)
    for change_set in (dimension_changes or {}).values():
        lineage.merge(change_set.lineage)
    return SummaryDelta(definition, delta_rows, policy, lineage=lineage)


def apply_all_changes(
    fact_changes: ChangeSet | None,
    dimension_changes: Mapping[str, ChangeSet] | None,
    definition: SummaryViewDefinition,
) -> None:
    """Apply fact and dimension change sets to their base tables."""
    if dimension_changes:
        for dimension_name, change_set in dimension_changes.items():
            change_set.apply_to(definition.fact.dimension(dimension_name).table)
    if fact_changes is not None:
        fact_changes.apply_to(definition.fact.table)
