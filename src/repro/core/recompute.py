"""MIN/MAX recomputation strategies: base-table scan vs index-assisted.

Figure 7 recomputes a threatened group "from the base data for t's group".
The naive strategy — one filtered pass over fact ⋈ dimensions for all
flagged groups — costs O(|fact|) per refresh, which makes refresh time grow
with the fact table and buries the paper's falling-refresh-time effect in
panel 9(b) (see EXPERIMENTS.md).

The paper's testbed had a composite index on ``(storeID, itemID, date)``;
a real optimizer answers a per-group recompute through it.  This module
plans the same access path for the hash-index engine: for each column of a
candidate fact index, find a *provider* of candidate values implied by the
group key —

* ``fixed``     — the column is itself a group-by attribute;
* ``dim_attrs`` — the column is a foreign key, and the group key fixes
  attributes of its dimension (e.g. ``category`` → the item ids in that
  category);
* ``dim_all``   — the column is a foreign key unconstrained by the group
  key: every dimension key is a candidate;
* ``domain``    — the column's distinct values are tracked by the table
  (:meth:`repro.relational.table.Table.track_domain`), e.g. ``date``.

The cartesian product of providers yields the exact index keys covering
the group; if the estimated probe count beats the scan, the index path is
used, otherwise the planner falls back to the batched scan.  Either way
the recomputed values are identical — tested against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any

from ..relational.index import HashIndex
from ..relational.operators import select
from ..relational.table import Table
from ..views.definition import SummaryViewDefinition

GroupKey = tuple[Any, ...]


@dataclass(frozen=True)
class _Provider:
    """Candidate values for one index column, given a group key."""

    kind: str                       # fixed | dim_attrs | dim_all | domain
    group_position: int = -1        # fixed: position within the group key
    dimension_name: str = ""        # dim_attrs / dim_all
    attr_group_positions: tuple[int, ...] = ()   # dim_attrs
    column: str = ""                # domain

    def estimate(self, definition: SummaryViewDefinition) -> float:
        fact = definition.fact
        if self.kind == "fixed":
            return 1.0
        if self.kind == "dim_attrs":
            dimension = fact.dimension(self.dimension_name)
            size = max(1, len(dimension.table))
            # Assume attribute combinations partition the keys evenly.
            combos = max(1, len({
                tuple(row[p] for p in dimension.table.schema.positions(
                    [definition.group_by[i] for i in self.attr_group_positions]
                ))
                for row in dimension.table.scan()
            }))
            return size / combos
        if self.kind == "dim_all":
            return float(max(1, len(fact.dimension(self.dimension_name).table)))
        domain = fact.table.domain(self.column)
        return float(len(domain) if domain else 1)


@dataclass
class IndexRecomputePlan:
    """A feasible index access path for per-group recomputation."""

    definition: SummaryViewDefinition
    index: HashIndex
    providers: tuple[_Provider, ...]
    estimated_probes_per_group: float

    def candidate_keys(self, key: GroupKey) -> list[tuple]:
        """All index keys that rows of group *key* can have."""
        fact = self.definition.fact
        per_column: list[list[Any]] = []
        for provider in self.providers:
            if provider.kind == "fixed":
                per_column.append([key[provider.group_position]])
            elif provider.kind == "dim_attrs":
                dimension = fact.dimension(provider.dimension_name)
                attrs = [
                    self.definition.group_by[i]
                    for i in provider.attr_group_positions
                ]
                positions = dimension.table.schema.positions(attrs)
                key_position = dimension.table.schema.position(dimension.key)
                wanted = tuple(key[i] for i in provider.attr_group_positions)
                per_column.append([
                    row[key_position]
                    for row in dimension.table.scan()
                    if tuple(row[p] for p in positions) == wanted
                ])
            elif provider.kind == "dim_all":
                dimension = fact.dimension(provider.dimension_name)
                key_position = dimension.table.schema.position(dimension.key)
                per_column.append(
                    [row[key_position] for row in dimension.table.scan()]
                )
            else:  # domain
                per_column.append(list(fact.table.domain(provider.column) or ()))
        return [tuple(combo) for combo in product(*per_column)]

    def gather_rows(self, key: GroupKey) -> Table:
        """Fetch the fact rows of group *key* through the index."""
        fact_table = self.definition.fact.table
        rows = Table(f"recompute_{self.definition.name}", fact_table.schema)
        for candidate in self.candidate_keys(key):
            for slot in self.index.lookup(candidate):
                rows.insert(fact_table.row_at(slot))
        return rows


def plan_index_recompute(
    definition: SummaryViewDefinition,
) -> IndexRecomputePlan | None:
    """Find the cheapest feasible index access path, or ``None``."""
    fact = definition.fact
    group_positions = {
        attribute: position
        for position, attribute in enumerate(definition.group_by)
    }
    fk_by_column = {fk.column: fk for fk in fact.foreign_keys}
    fact_columns = set(fact.columns)

    best: IndexRecomputePlan | None = None
    for index in fact.table.indexes.values():
        providers: list[_Provider] = []
        feasible = True
        for column in index.columns:
            if column in group_positions and column in fact_columns:
                providers.append(
                    _Provider("fixed", group_position=group_positions[column])
                )
                continue
            fk = fk_by_column.get(column)
            if fk is not None:
                owned = [
                    group_positions[attribute]
                    for attribute in definition.group_by
                    if attribute in fk.dimension.columns
                    and attribute not in fact_columns
                ] if fk.dimension.name in definition.dimensions else []
                if owned:
                    providers.append(_Provider(
                        "dim_attrs",
                        dimension_name=fk.dimension.name,
                        attr_group_positions=tuple(owned),
                    ))
                else:
                    # The dimension key enumerates the column's candidate
                    # values whether or not the view joins that dimension.
                    providers.append(
                        _Provider("dim_all", dimension_name=fk.dimension.name)
                    )
                continue
            if fact.table.domain(column) is not None:
                providers.append(_Provider("domain", column=column))
                continue
            feasible = False
            break
        if not feasible:
            continue
        estimate = 1.0
        for provider in providers:
            estimate *= provider.estimate(definition)
        plan = IndexRecomputePlan(
            definition=definition,
            index=index,
            providers=tuple(providers),
            estimated_probes_per_group=estimate,
        )
        if best is None or estimate < best.estimated_probes_per_group:
            best = plan
    return best


def recompute_groups_via_index(
    plan: IndexRecomputePlan, keys: list[GroupKey]
) -> dict[GroupKey, tuple]:
    """Recompute the aggregate values of *keys* through the planned index.

    All groups of one refresh are pooled: every candidate key is probed,
    the matching fact slots are deduplicated, and a single gather →
    dimension join → group-by pass recomputes every requested group
    together, instead of one join+fold pipeline per group.  Candidate
    keys constrain only the index columns, so a slot over-fetched for one
    group may truly belong to another; the final group-by routes each row
    to its actual group and the ``wanted`` filter drops groups nobody
    asked for — results are identical to the per-group evaluation.
    """
    from ..relational.aggregation import group_by as physical_group_by
    from ..relational.expressions import col as column_ref

    definition = plan.definition
    fact_table = definition.fact.table
    slots: dict[int, None] = {}
    for key in keys:
        for candidate in plan.candidate_keys(key):
            for slot in plan.index.lookup(candidate):
                slots[slot] = None
    if not slots:
        return {}
    rows = Table(f"recompute_{definition.name}", fact_table.schema,
                 storage=fact_table.storage)
    rows.append_batch(fact_table.take(list(slots)))
    joined = definition.fact.join_dimensions(rows, definition.dimensions)
    if definition.where is not None:
        joined = select(joined, definition.where)
    aggregates = [
        (output.name,
         output.function.argument if output.function.argument is not None
         else column_ref(joined.schema.columns[0]),
         output.function.base_reducer())
        for output in definition.aggregates
    ]
    grouped = physical_group_by(joined, definition.group_by, aggregates)
    arity = len(definition.group_by)
    wanted = set(keys)
    return {
        row[:arity]: row[arity:]
        for row in grouped.scan()
        if row[:arity] in wanted
    }
