"""The refresh function: apply a summary delta to a summary table.

This is the paper's Figure 7 generalised refresh algorithm.  For each
summary-delta tuple, the corresponding summary-table tuple (same group-by
values) is located through the table's group-by index and then:

* **inserted** when no corresponding tuple exists;
* **deleted** when the group's new ``COUNT(*)`` reaches zero;
* **recomputed from base data** when a MIN/MAX extremum may have been
  deleted (see :class:`~repro.core.deltas.MinMaxPolicy` for the exact
  trigger); or
* **updated in place** otherwise, with per-aggregate combination rules
  (add for counts/sums, fold for MIN/MAX) and null handling driven by the
  companion ``COUNT(e)`` columns.

Two execution variants are provided, mirroring Section 4.2's closing
observation:

* ``CURSOR`` — the embedded-SQL style of Figure 2: per delta tuple, index
  lookup then immediate insert/update/delete;
* ``OUTER_JOIN`` — the "summary-delta join" the paper says database vendors
  should build in: all decisions are computed first against a read-only
  view of the table, then applied in one batch.

Both variants share the decision logic and produce identical final states.

Group lookup goes through :class:`GroupLocator`: by default one hash probe
per delta tuple on the summary table's group-key index (built once if
missing, maintained incrementally thereafter), making refresh
O(|summary-delta|).  ``REPRO_REFRESH_INDEX=0`` falls back to a linear scan
of the summary table per delta tuple — the O(|summary table|) baseline the
``refresh_index`` benchmark section measures against.

Engineering note on recomputation: Figure 7 recomputes a group "from the
base data for t's group" — in the paper's RDBMS that is one query per
group.  Issuing one scan per group would distort our cost model (we have no
optimizer to pick per-group index plans for arbitrary dimension attributes),
so recomputation is *batched*: all groups flagged for recompute in one
refresh are recomputed in a single pass over the base data.  The result is
identical; only the access pattern differs.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import InconsistentDeltaError, MaintenanceError
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..obs.lineage import record_publish as lineage_record_publish
from ..relational.stats import collector
from ..relational.table import Row, charge_access
from ..relational.types import null_max, null_min
from ..views.definition import SummaryViewDefinition
from ..views.materialize import MaterializedView
from .deltas import MinMaxPolicy, SummaryDelta, del_column, ins_column

GroupKey = tuple[Any, ...]
#: Batched recompute callback: group keys -> recomputed aggregate values
#: (one tuple of aggregate-column values per surviving group).
RecomputeFn = Callable[[list[GroupKey]], dict[GroupKey, tuple[Any, ...]]]


class RefreshVariant(enum.Enum):
    """How refresh decisions are executed (same decisions either way)."""

    CURSOR = "cursor"
    OUTER_JOIN = "outer_join"


def refresh_index_enabled() -> bool:
    """Whether refresh locates groups through the summary table's group-key
    hash index (the Figure 7 fast path).  ``REPRO_REFRESH_INDEX=0`` disables
    it, restoring the linear-scan-per-tuple baseline."""
    return os.environ.get("REPRO_REFRESH_INDEX", "1") != "0"


class RefreshMode(enum.Enum):
    """How a maintenance cycle applies summary deltas to stored views.

    * ``INPLACE`` — Figure 7 applied directly to the live table (the
      paper's batch-window assumption: no concurrent readers).
    * ``ATOMIC`` — in-place with an undo log
      (:func:`repro.core.transactional.refresh_atomically`): all-or-
      nothing, but readers mid-refresh can still observe intermediate
      states.
    * ``VERSIONED`` — copy-on-refresh
      (:func:`repro.core.transactional.refresh_versioned`): the delta is
      applied to a private shadow copy, validated against its consistency
      certificate, and published with a single reference swap, so
      concurrent readers never see a torn view.
    """

    INPLACE = "inplace"
    ATOMIC = "atomic"
    VERSIONED = "versioned"


def versioned_default() -> bool:
    """Whether maintenance defaults to versioned copy-on-refresh.

    Versioned copy-on-refresh is the shipped default: readers overlap the
    refresh window and epoch manifests pin each published version to its
    contributing batches.  ``REPRO_VERSIONED=0`` is the kill switch back
    to in-place refresh (the paper's exclusive batch-window setting — no
    table copying, no concurrent reads during refresh)."""
    return os.environ.get("REPRO_VERSIONED", "1") == "1"


def resolve_refresh_mode(mode: "RefreshMode | str | None" = None) -> RefreshMode:
    """Normalise a mode argument: enum member, its string value, or
    ``None`` for the environment-driven default."""
    if mode is None:
        return RefreshMode.VERSIONED if versioned_default() else RefreshMode.INPLACE
    if isinstance(mode, RefreshMode):
        return mode
    return RefreshMode(str(mode).lower())


def apply_refresh(
    view: MaterializedView,
    delta: SummaryDelta,
    recompute: "RecomputeFn | None" = None,
    variant: RefreshVariant = RefreshVariant.CURSOR,
    mode: "RefreshMode | str | None" = None,
) -> "RefreshStats":
    """Apply one summary delta through the selected :class:`RefreshMode`.

    The single dispatch point the lattice/maintenance layers go through,
    so a whole cycle switches discipline with one argument (or the
    ``REPRO_VERSIONED`` environment default)."""
    resolved = resolve_refresh_mode(mode)
    if resolved is RefreshMode.INPLACE:
        return refresh(view, delta, recompute, variant)
    from .transactional import refresh_atomically, refresh_versioned

    if resolved is RefreshMode.ATOMIC:
        return refresh_atomically(view, delta, recompute)
    return refresh_versioned(view, delta, recompute, variant)


class GroupLocator:
    """Figure 7's "find the summary tuple with t's group-by values".

    The strategy depends on the view and the ``REPRO_REFRESH_INDEX``
    kill-switch:

    * grouped view, index enabled (the default): one hash probe per delta
      tuple against the table's group-key index — O(1) per tuple, so a
      whole refresh costs O(|summary-delta|) tuple accesses regardless of
      summary-table size.  The index is built once if the table does not
      already have it, then maintained incrementally by the table's
      mutation hooks — including through
      :func:`~repro.core.transactional.refresh_atomically` rollback, whose
      undo log replays inverses via those same hooks.
    * grouped view, ``REPRO_REFRESH_INDEX=0``: a fresh linear scan of the
      summary table per delta tuple — the O(|summary table|) baseline the
      ``refresh_index`` benchmark section contrasts against.  Rows examined
      are charged as ``rows_scanned`` to the stats collector and span.
    * no-group-by view: single-row table; the first live slot is the
      group's row in both modes (no index involved).

    ``probes`` counts ``slot_of`` calls; the surrounding refresh span
    records it as ``index_probes`` (or ``scan_probes`` when the index is
    disabled) and the metrics registry as ``refresh.index_probes``.
    """

    __slots__ = ("_table", "_arity", "_index", "probes")

    def __init__(self, view: MaterializedView):
        definition = view.definition
        self._table = view.table
        self._arity = len(definition.group_by)
        self.probes = 0
        self._index = None
        if self._arity and refresh_index_enabled():
            index = view.group_key_index()
            if index is None:
                index = view.table.create_index(list(definition.group_by))
            self._index = index

    @property
    def indexed(self) -> bool:
        """Whether probes go through the group-key hash index."""
        return self._index is not None

    def slot_of(self, key: GroupKey) -> int | None:
        """Slot of the live summary row whose group-by values equal *key*,
        or ``None`` when the group is absent from the view."""
        self.probes += 1
        if self._index is not None:
            return self._index.lookup_one(key)
        arity = self._arity
        examined = 0
        found = None
        for slot, row in self._table.slots():
            if not arity:
                found = slot
                break
            examined += 1
            if row[:arity] == key:
                found = slot
                break
        if examined:
            stats = collector()
            if stats is not None:
                stats.add("rows_scanned", examined)
            span = tracing.current_span()
            if span is not None:
                span.add("rows_scanned", examined)
        return found


@dataclass
class RefreshStats:
    """What one refresh run did to a summary table."""

    delta_rows: int = 0
    inserted: int = 0
    updated: int = 0
    deleted: int = 0
    recomputed: int = 0

    @property
    def touched(self) -> int:
        return self.inserted + self.updated + self.deleted + self.recomputed

    def __add__(self, other: "RefreshStats") -> "RefreshStats":
        return RefreshStats(
            delta_rows=self.delta_rows + other.delta_rows,
            inserted=self.inserted + other.inserted,
            updated=self.updated + other.updated,
            deleted=self.deleted + other.deleted,
            recomputed=self.recomputed + other.recomputed,
        )


@dataclass(frozen=True)
class _MinMaxColumn:
    """Refresh metadata for one MIN/MAX aggregate column."""

    storage_index: int      # position in the view's storage schema
    is_min: bool
    count_index: int        # position of the governing COUNT(e) column
    delta_ins_index: int    # SPLIT policy: insertion-side delta column
    delta_del_index: int    # SPLIT policy: deletion-side delta column


@dataclass(frozen=True)
class _SummableColumn:
    """Refresh metadata for a COUNT/SUM aggregate column."""

    storage_index: int
    is_sum: bool            # SUM(e): governed by COUNT(e); COUNTs are not
    count_index: int        # governing COUNT(e) position (-1 for counts)


class RefreshPlan:
    """Positional metadata compiled once per (definition, policy) pair."""

    def __init__(self, definition: SummaryViewDefinition, policy: MinMaxPolicy):
        storage = definition.storage_schema()
        self.group_arity = len(definition.group_by)
        self.n_columns = len(storage)
        self.count_star_index = storage.position(definition.count_star_column())
        self.policy = policy

        self.summable: list[_SummableColumn] = []
        self.minmax: list[_MinMaxColumn] = []
        delta = None
        for output in definition.aggregates:
            position = storage.position(output.name)
            kind = output.function.kind
            if kind in ("count_star", "count"):
                self.summable.append(_SummableColumn(position, is_sum=False, count_index=-1))
            elif kind == "sum":
                count_name = definition.count_column_for(output.function.argument)
                if count_name is None:
                    raise MaintenanceError(
                        f"view {definition.name!r}: SUM column {output.name!r} "
                        "has no companion COUNT(e); resolve the definition first"
                    )
                self.summable.append(
                    _SummableColumn(position, is_sum=True,
                                    count_index=storage.position(count_name))
                )
            elif kind in ("min", "max"):
                count_name = definition.count_column_for(output.function.argument)
                if count_name is None:
                    raise MaintenanceError(
                        f"view {definition.name!r}: {kind.upper()} column "
                        f"{output.name!r} has no companion COUNT(e); resolve "
                        "the definition first"
                    )
                if policy is MinMaxPolicy.SPLIT:
                    from .deltas import delta_schema

                    delta = delta or delta_schema(definition, policy)
                    ins_index = delta.position(ins_column(output.name))
                    del_index = delta.position(del_column(output.name))
                else:
                    ins_index = del_index = -1
                self.minmax.append(
                    _MinMaxColumn(
                        storage_index=position,
                        is_min=(kind == "min"),
                        count_index=storage.position(count_name),
                        delta_ins_index=ins_index,
                        delta_del_index=del_index,
                    )
                )
            else:
                raise MaintenanceError(
                    f"view {definition.name!r}: cannot refresh aggregate kind "
                    f"{kind!r}"
                )


@dataclass
class RefreshActions:
    """Deferred refresh actions (used by both variants for recompute, and
    by the OUTER_JOIN variant for everything)."""

    inserts: list[Row] = field(default_factory=list)
    deletes: list[int] = field(default_factory=list)
    updates: list[tuple[int, Row]] = field(default_factory=list)
    #: (slot, key); slot is None when the recomputed group is new to the
    #: view and its result must be inserted rather than updated in place.
    recomputes: list[tuple[int | None, GroupKey]] = field(default_factory=list)


def decide(
    plan: RefreshPlan,
    definition_name: str,
    old_row: Row | None,
    delta_row: Row,
    key: GroupKey,
    slot: int | None,
    actions: RefreshActions,
) -> None:
    """Classify one delta tuple into an action (Figure 7's per-tuple body)."""
    g = plan.group_arity
    cs = plan.count_star_index

    if old_row is None:
        delta_count_star = delta_row[cs]
        if delta_count_star == 0:
            # A perfectly cancelled delta on a group absent from the view —
            # possible under combined fact+dimension changes (§4.1.4 cross
            # terms): a no-op, not an error.
            return
        if delta_count_star is None or delta_count_star < 0:
            raise InconsistentDeltaError(
                f"view {definition_name!r}: delta for new group {key!r} has "
                f"COUNT(*) {delta_count_star!r}; deletions cannot apply to a "
                "group absent from the view"
            )
        if plan.policy is MinMaxPolicy.SPLIT:
            # A deletion-side footprint on a NEW group means contributions
            # were cancelled (dimension-change cross terms); the net
            # extremum cannot be derived from the delta — recompute the
            # whole group from base data and insert the result.
            if any(
                delta_row[column.delta_del_index] is not None
                for column in plan.minmax
            ):
                actions.recomputes.append((None, key))
                return
            new_row = list(delta_row[: plan.n_columns])
            for column in plan.minmax:
                new_row[column.storage_index] = delta_row[column.delta_ins_index]
            actions.inserts.append(tuple(new_row))
        else:
            actions.inserts.append(tuple(delta_row[: plan.n_columns]))
        return

    new_count_star = old_row[cs] + delta_row[cs]
    if new_count_star < 0:
        raise InconsistentDeltaError(
            f"view {definition_name!r}: group {key!r} COUNT(*) would become "
            f"{new_count_star}"
        )
    if new_count_star == 0:
        actions.deletes.append(slot)
        return

    # MIN/MAX recompute check (Figure 7).
    for column in plan.minmax:
        old_extreme = old_row[column.storage_index]
        if old_extreme is None:
            continue
        new_count_e = old_row[column.count_index] + delta_row[column.count_index]
        if new_count_e <= 0:
            continue
        if plan.policy is MinMaxPolicy.SPLIT:
            threat = delta_row[column.delta_del_index]
        else:
            threat = delta_row[column.storage_index]
        if threat is None:
            continue
        beats = threat <= old_extreme if column.is_min else threat >= old_extreme
        if beats:
            actions.recomputes.append((slot, key))
            return

    # Plain in-place update.
    new_row = list(old_row)
    new_row[cs] = new_count_star
    for column in plan.summable:
        if column.storage_index == cs:
            continue
        old_value = old_row[column.storage_index]
        delta_value = delta_row[column.storage_index]
        if column.is_sum:
            new_count_e = old_row[column.count_index] + delta_row[column.count_index]
            if new_count_e == 0:
                new_row[column.storage_index] = None
            elif delta_value is None:
                new_row[column.storage_index] = old_value
            elif old_value is None:
                new_row[column.storage_index] = delta_value
            else:
                new_row[column.storage_index] = old_value + delta_value
        else:
            new_row[column.storage_index] = old_value + delta_value
    for column in plan.minmax:
        new_count_e = old_row[column.count_index] + delta_row[column.count_index]
        if new_count_e == 0:
            new_row[column.storage_index] = None
            continue
        if plan.policy is MinMaxPolicy.SPLIT:
            incoming = delta_row[column.delta_ins_index]
        else:
            incoming = delta_row[column.storage_index]
        fold = null_min if column.is_min else null_max
        new_row[column.storage_index] = fold(
            old_row[column.storage_index], incoming
        )
    actions.updates.append((slot, tuple(new_row)))


def refresh(
    view: MaterializedView,
    delta: SummaryDelta,
    recompute: RecomputeFn | None = None,
    variant: RefreshVariant = RefreshVariant.CURSOR,
    assume_all_new: bool = False,
) -> RefreshStats:
    """Apply *delta* to *view* (paper, Figure 7); return what was done.

    *recompute* supplies batched base-data recomputation for MIN/MAX; it is
    required only when the view has MIN/MAX aggregates and a deletion (or,
    under the PAPER policy, any change) threatens a stored extremum.  It is
    called against the *updated* base data, per the paper's assumption that
    base-table changes are applied before refresh.

    *assume_all_new* is the integrity-constraint optimisation the paper
    alludes to in §2.1: when the caller *knows* every delta group is absent
    from the view — e.g. new-date insertions into a view grouping by date —
    the per-tuple index lookup is skipped and all delta rows are
    bulk-inserted.  Using it when the assumption is false silently corrupts
    the view (detectable afterwards with ``Warehouse.verify_views``); it is
    never enabled implicitly.
    """
    if delta.definition.name != view.definition.name:
        raise MaintenanceError(
            f"delta for {delta.definition.name!r} applied to view "
            f"{view.definition.name!r}"
        )
    with tracing.span(
        "refresh", view=view.definition.name, variant=variant.value,
    ) as span:
        locator = GroupLocator(view)
        span.set_tag("indexed", locator.indexed)
        stats = _refresh_impl(
            view, delta, recompute, variant, assume_all_new, locator
        )
        _record_refresh_stats(span, stats, locator)
        view.freshness.mark_refreshed(stats.delta_rows)
        lineage_record_publish(view, delta, mode=RefreshMode.INPLACE.value)
        return stats


def _record_refresh_stats(
    span, stats: RefreshStats, locator: GroupLocator | None = None
) -> None:
    """Mirror one refresh run's action counts onto its span and the
    process-wide metrics registry."""
    span.add("delta_rows", stats.delta_rows)
    span.add("inserted", stats.inserted)
    span.add("updated", stats.updated)
    span.add("deleted", stats.deleted)
    span.add("recomputed", stats.recomputed)
    if locator is not None and locator.probes:
        # Not an access counter (the probes themselves charge
        # ``index_lookups``/``rows_scanned``); this records *how* groups
        # were located so traces can tell the two regimes apart.
        span.add("index_probes" if locator.indexed else "scan_probes",
                 locator.probes)
    if tracing.enabled():
        registry = obs_metrics.registry()
        registry.counter("refresh.delta_rows").inc(stats.delta_rows)
        registry.counter("refresh.inserted").inc(stats.inserted)
        registry.counter("refresh.updated").inc(stats.updated)
        registry.counter("refresh.deleted").inc(stats.deleted)
        registry.counter("refresh.recomputed").inc(stats.recomputed)
        if locator is not None and locator.indexed and locator.probes:
            registry.counter("refresh.index_probes").inc(locator.probes)
        cert_digests = span.counters.get("cert_digests", 0)
        if cert_digests:
            registry.counter("integrity.cert_digests").inc(cert_digests)


def _refresh_impl(
    view: MaterializedView,
    delta: SummaryDelta,
    recompute: RecomputeFn | None,
    variant: RefreshVariant,
    assume_all_new: bool,
    locator: GroupLocator,
) -> RefreshStats:
    plan = RefreshPlan(view.definition, delta.policy)
    stats = RefreshStats(delta_rows=len(delta.table))
    actions = RefreshActions()
    name = view.definition.name
    g = plan.group_arity

    if assume_all_new:
        for delta_row in delta.table.scan():
            key = delta_row[:g]
            local = RefreshActions()
            decide(plan, name, None, delta_row, key, None, local)
            for row in local.inserts:
                view.table.insert(row)
                stats.inserted += 1
            actions.recomputes.extend(local.recomputes)
        if actions.recomputes:
            raise MaintenanceError(
                f"view {name!r}: assume_all_new refresh hit groups needing "
                "base-data recomputation; the all-new assumption is unsafe "
                "for this delta"
            )
        return stats

    if variant is RefreshVariant.CURSOR:
        # Per-tuple: look up, decide, apply immediately (recompute deferred —
        # see the module docstring).
        for delta_row in delta.table.scan():
            key = delta_row[:g]
            slot = locator.slot_of(key)
            old_row = view.table.row_at(slot) if slot is not None else None
            local = RefreshActions()
            decide(plan, name, old_row, delta_row, key, slot, local)
            for row in local.inserts:
                view.table.insert(row)
                stats.inserted += 1
            for doomed in local.deletes:
                view.table.delete_slot(doomed)
                stats.deleted += 1
            for update_slot, new_row in local.updates:
                view.table.update_slot(update_slot, new_row)
                stats.updated += 1
            actions.recomputes.extend(local.recomputes)
    else:
        # OUTER_JOIN, batch form: resolve every group probe up front, make
        # all decisions against the pre-apply table state, then apply the
        # actions grouped by kind through the table's bulk mutators.  The
        # bulk mutators still run per-row index/observer maintenance
        # (certificates must see every mutation) but charge access stats
        # once per batch — totals identical to the cursor path.
        delta_rows = delta.table.rows()
        charge_access("rows_scanned", len(delta_rows))
        keys = [delta_row[:g] for delta_row in delta_rows]
        slots = list(map(locator.slot_of, keys))
        row_at = view.table.row_at
        for delta_row, key, slot in zip(delta_rows, keys, slots):
            old_row = row_at(slot) if slot is not None else None
            decide(plan, name, old_row, delta_row, key, slot, actions)
        if actions.inserts:
            stats.inserted += view.table.insert_many(actions.inserts)
        if actions.deletes:
            stats.deleted += view.table.delete_slots(actions.deletes)
        if actions.updates:
            stats.updated += view.table.update_slots(actions.updates)

    if actions.recomputes:
        if recompute is None:
            raise MaintenanceError(
                f"view {name!r}: refresh needs base-data recomputation for "
                f"{len(actions.recomputes)} group(s) but no recompute source "
                "was provided"
            )
        keys = [key for _slot, key in actions.recomputes]
        recomputed = recompute(keys)
        for slot, key in actions.recomputes:
            values = recomputed.get(key)
            if values is None:
                raise InconsistentDeltaError(
                    f"view {name!r}: group {key!r} flagged for recomputation "
                    "has no base rows, but its COUNT(*) is positive"
                )
            if slot is None:
                view.table.insert(key + values)
            else:
                view.table.update_slot(slot, key + values)
            stats.recomputed += 1
    return stats
