"""Summary-delta tables: the net effect of a change set on a summary table.

A :class:`SummaryDelta` wraps a table whose schema mirrors the summary
table's storage schema — group-by columns followed by one delta column per
stored aggregate — optionally extended with split insertion/deletion minima
(see :class:`MinMaxPolicy`).  Each delta row describes the change to the one
summary-table row sharing its group-by values (paper, Section 4.1.2).

Internally delta columns keep the *same names* as the summary-table columns
they affect; the ``sd_`` prefix the paper uses is applied only when
rendering SQL (:mod:`repro.views.sql`).  Keeping the names identical is what
makes Theorem 5.1 executable: the same lattice-edge query that derives a
child view from a parent view derives the child's delta from the parent's
delta.
"""

from __future__ import annotations

import enum

from ..errors import MaintenanceError
from ..obs.lineage import BatchLineage
from ..relational.schema import Schema
from ..relational.table import Table
from ..views.definition import SummaryViewDefinition


class MinMaxPolicy(enum.Enum):
    """How MIN/MAX deltas are represented and when refresh recomputes.

    ``PAPER``
        Exactly Figure 7: the delta stores a single MIN/MAX over *all*
        changed values (inserted and deleted alike).  Refresh conservatively
        recomputes from base data whenever the delta minimum ties or beats
        the stored minimum — even when the change was an insertion that
        merely lowers the minimum.

    ``SPLIT``
        Our documented extension (an ablation in ``benchmarks/``): the delta
        additionally stores the minimum over inserted values and the minimum
        over deleted values separately.  Refresh recomputes only when a
        *deletion* ties or beats the stored extremum; insert-driven lowering
        is folded in without touching base data.
    """

    PAPER = "paper"
    SPLIT = "split"


def ins_column(name: str) -> str:
    """Delta column holding the insertion-side extremum for aggregate *name*."""
    return f"__ins_{name}"


def del_column(name: str) -> str:
    """Delta column holding the deletion-side extremum for aggregate *name*."""
    return f"__del_{name}"


def minmax_outputs(definition: SummaryViewDefinition) -> list:
    """The MIN/MAX aggregate outputs of a resolved definition."""
    return [
        output for output in definition.aggregates
        if output.function.kind in ("min", "max")
    ]


def delta_schema(
    definition: SummaryViewDefinition, policy: MinMaxPolicy
) -> Schema:
    """The summary-delta schema for a resolved view under *policy*."""
    columns = list(definition.storage_schema().columns)
    if policy is MinMaxPolicy.SPLIT:
        for output in minmax_outputs(definition):
            columns.append(ins_column(output.name))
            columns.append(del_column(output.name))
    return Schema(columns)


class SummaryDelta:
    """The computed summary-delta table for one view.

    *lineage* names the change-set batches this delta folds in
    (:class:`~repro.obs.lineage.BatchLineage`, snapshotted when propagate
    reads the change set).  Derived deltas — a child computed from a
    parent's delta along a lattice edge — inherit the parent's lineage:
    the same source batches flow through every edge query.  Refresh pins
    it into the view's epoch manifest at commit time.  Hand-built deltas
    default to an empty lineage and record no manifest.
    """

    def __init__(
        self,
        definition: SummaryViewDefinition,
        table: Table,
        policy: MinMaxPolicy = MinMaxPolicy.PAPER,
        lineage: BatchLineage | None = None,
    ):
        expected = delta_schema(definition, policy)
        if table.schema != expected:
            raise MaintenanceError(
                f"summary delta for {definition.name!r} has schema "
                f"{list(table.schema.columns)}, expected {list(expected.columns)}"
            )
        self.definition = definition
        self.table = table
        self.policy = policy
        self.lineage = lineage if lineage is not None else BatchLineage()

    def __repr__(self) -> str:
        return (
            f"SummaryDelta({self.definition.name!r}, {len(self.table)} rows, "
            f"policy={self.policy.value})"
        )

    def __len__(self) -> int:
        return len(self.table)
