"""The propagate function: compute summary-delta tables (paper, Section 4.1).

Propagate runs *outside* the batch window: it reads only the deferred change
set (never the summary table, and — except under pre-aggregation — only the
dimension tables needed by the view), aggregates the prepare-changes rows on
the view's group-by attributes, and produces the
:class:`~repro.core.deltas.SummaryDelta`.

Two optimisations from the paper are implemented:

* **Pre-aggregation** (Section 4.1.3): joins with dimension tables whose
  attributes are not referenced by any aggregate source or selection can be
  delayed until after a first aggregation pass over the bare changes, which
  shrinks the join input.  Enabled via
  :attr:`PropagateOptions.pre_aggregate`.
* **Delta-from-delta** computation along the D-lattice (Section 5.4) lives
  in :mod:`repro.lattice.dlattice`; this module computes a delta *directly
  from the change set*, which is both the single-view path and the paper's
  "propagate without lattice" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import metrics, tracing
from ..relational.aggregation import (
    BACKENDS,
    AggregateSpec,
    MaxReducer,
    MinReducer,
    group_by,
    group_by_chunked,
)

__all__ = [
    "PropagateOptions",
    "classify_dimensions",
    "compute_summary_delta",
]
from ..relational.expressions import Column, Expression
from ..relational.operators import hash_join, project, select, union_all
from ..relational.table import Table
from ..views.definition import SummaryViewDefinition
from ..warehouse.changes import ChangeSet
from .deltas import (
    MinMaxPolicy,
    SummaryDelta,
    del_column,
    ins_column,
    minmax_outputs,
)
from .prepare import prepare_changes, source_column


@dataclass(frozen=True)
class PropagateOptions:
    """Tuning knobs for the propagate function.

    The parallel-engine knobs (§4.1.2's "techniques for parallelizing
    aggregation"):

    ``parallel``
        Run every propagate aggregation through
        :func:`~repro.relational.aggregation.group_by_chunked`, splitting
        the input into ``chunks`` slices folded on ``backend`` and merging
        partial states with the distributive ``Reducer.merge``.  Output is
        identical to the serial path.
    ``chunks`` / ``backend`` / ``max_workers``
        Chunk count and executor for the chunked aggregation
        (``"serial"``, ``"thread"``, or ``"process"``), and the worker
        cap for executor backends (``None`` = executor default).
    ``level_parallel``
        In :func:`~repro.lattice.plan.propagate_lattice`, dispatch
        same-level (antichain) D-lattice nodes concurrently once their
        parents' deltas are ready, instead of walking the strict
        topological order.
    ``shared_scan``
        In :func:`~repro.lattice.plan.propagate_lattice`, fuse the
        group-bys of sibling D-lattice children into a single compiled
        pass over their parent's delta (one scan, k accumulator sets; see
        :mod:`repro.relational.fused`) instead of one join+aggregate
        pipeline per child.  ``None`` (the default) defers to the
        ``REPRO_SHARED_SCAN`` environment kill-switch; the deltas are
        identical either way.
    ``partition`` / ``shard_workers``
        In :func:`~repro.lattice.plan.maintain_lattice`, when the fact
        table is date-partitioned (see :mod:`repro.warehouse.partition`),
        compute per-shard summary deltas on a process pool of
        ``shard_workers`` workers (``None`` = CPU count) and merge them
        with ``Reducer.merge`` before one standard refresh per view.
        ``partition=None`` (the default) defers to the ``REPRO_PARTITION``
        environment switch; the merged deltas, certificates, and lineage
        manifests are identical to the serial path either way.
    """

    policy: MinMaxPolicy = MinMaxPolicy.PAPER
    pre_aggregate: bool = False
    parallel: bool = False
    chunks: int = 4
    backend: str = "thread"
    max_workers: int | None = None
    level_parallel: bool = False
    shared_scan: bool | None = None
    partition: bool | None = None
    shard_workers: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.chunks, int) or isinstance(self.chunks, bool) \
                or self.chunks < 1:
            raise ValueError(
                f"chunks must be a positive integer, got {self.chunks!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{', '.join(BACKENDS)}"
            )
        if self.shard_workers is not None and (
            not isinstance(self.shard_workers, int)
            or isinstance(self.shard_workers, bool)
            or self.shard_workers < 1
        ):
            raise ValueError(
                f"shard_workers must be a positive integer or None, "
                f"got {self.shard_workers!r}"
            )

    def shared_scan_active(self) -> bool:
        """Whether lattice propagation should run the shared-scan engine:
        the explicit ``shared_scan`` option when set, otherwise the
        ``REPRO_SHARED_SCAN`` environment default."""
        if self.shared_scan is not None:
            return self.shared_scan
        from ..relational.fused import shared_scan_enabled

        return shared_scan_enabled()

    def partition_active(self) -> bool:
        """Whether maintenance should take the shard-parallel path for a
        partitioned fact table: the explicit ``partition`` option when
        set, otherwise the ``REPRO_PARTITION`` environment switch."""
        if self.partition is not None:
            return self.partition
        from ..warehouse.partition import partition_enabled

        return partition_enabled()

    def aggregate(self, table, keys, specs, name=None):
        """Run one propagate aggregation under these options: chunked and
        possibly parallel when ``parallel`` is set, plain otherwise."""
        if self.parallel:
            return group_by_chunked(
                table, keys, specs, chunks=self.chunks, name=name,
                backend=self.backend, max_workers=self.max_workers,
            )
        return group_by(table, keys, specs, name=name)


def _delta_specs(
    definition: SummaryViewDefinition, policy: MinMaxPolicy
) -> list[AggregateSpec]:
    """Aggregation specs that fold prepare-changes rows into delta rows.

    Also correct for *re*-aggregating already partially aggregated rows
    (pre-aggregation phase 2, and D-lattice edges), because every delta
    reducer is distributive.
    """
    specs: list[AggregateSpec] = [
        (
            output.name,
            Column(source_column(output.name)),
            output.function.delta_reducer(),
        )
        for output in definition.aggregates
    ]
    if policy is MinMaxPolicy.SPLIT:
        for output in minmax_outputs(definition):
            reducer_type = MinReducer if output.function.kind == "min" else MaxReducer
            specs.append(
                (ins_column(output.name), Column(ins_column(output.name)), reducer_type())
            )
            specs.append(
                (del_column(output.name), Column(del_column(output.name)), reducer_type())
            )
    return specs


def compute_summary_delta(
    definition: SummaryViewDefinition,
    changes: ChangeSet,
    options: PropagateOptions = PropagateOptions(),
) -> SummaryDelta:
    """Compute the summary delta for one view directly from a change set."""
    with tracing.span(
        "compute_delta", view=definition.name,
        pre_aggregate=options.pre_aggregate, parallel=options.parallel,
    ) as sp:
        if options.pre_aggregate:
            delta_rows = _propagate_preaggregated(definition, changes, options)
        else:
            pc = prepare_changes(definition, changes, options.policy)
            delta_rows = options.aggregate(
                pc,
                definition.group_by,
                _delta_specs(definition, options.policy),
                name=f"sd_{definition.name}",
            )
        sp.add("changes_in", changes.size())
        sp.add("delta_rows", len(delta_rows))
        if tracing.enabled():
            registry = metrics.registry()
            registry.counter("propagate.invocations").inc()
            registry.counter("propagate.delta_rows").inc(len(delta_rows))
        return SummaryDelta(
            definition, delta_rows, options.policy,
            lineage=changes.lineage.snapshot(),
        )


# ----------------------------------------------------------------------
# Pre-aggregation (Section 4.1.3)
# ----------------------------------------------------------------------

def classify_dimensions(
    definition: SummaryViewDefinition,
) -> tuple[list[str], list[str]]:
    """Split the view's dimensions into (early, delayable).

    A dimension join can be delayed past pre-aggregation when none of the
    view's aggregate sources or selection conditions reference its columns —
    only group-by attributes may come from it (those are grouped again after
    the delayed join).
    """
    referenced: set[str] = set()
    for output in definition.aggregates:
        referenced |= output.function.referenced_columns()
    if definition.where is not None:
        referenced |= definition.where.columns()

    early: list[str] = []
    delayable: list[str] = []
    fact_columns = set(definition.fact.columns)
    for dimension_name in definition.dimensions:
        dimension = definition.fact.dimension(dimension_name)
        own_columns = set(dimension.columns) - fact_columns
        if referenced & own_columns:
            early.append(dimension_name)
        else:
            delayable.append(dimension_name)
    return early, delayable


def _propagate_preaggregated(
    definition: SummaryViewDefinition,
    changes: ChangeSet,
    options: PropagateOptions,
) -> Table:
    """Propagate with delayed dimension joins.

    Phase 1 joins only the *early* dimensions, projects the Table 1 sources,
    and aggregates on (fact-side group-bys ∪ early-dimension group-bys ∪
    the foreign keys of delayed dimensions).  Phase 2 joins the delayed
    dimensions and re-aggregates on the view's true group-by attributes.
    Both aggregation passes honour the options' parallel engine settings.
    """
    policy = options.policy
    early, delayed = classify_dimensions(definition)
    if not delayed:
        pc = prepare_changes(definition, changes, policy)
        return options.aggregate(
            pc, definition.group_by, _delta_specs(definition, policy),
            name=f"sd_{definition.name}",
        )

    fact = definition.fact
    available_early = set(fact.columns)
    for dimension_name in early:
        available_early |= set(fact.dimension(dimension_name).columns)

    phase1_keys: list[str] = [
        attribute for attribute in definition.group_by
        if attribute in available_early
    ]
    for dimension_name in delayed:
        fk_column = fact.foreign_key_for(dimension_name).column
        if fk_column not in phase1_keys:
            phase1_keys.append(fk_column)

    sides = []
    for deletion, rows in ((False, changes.insertions), (True, changes.deletions)):
        if not len(rows) and sides:
            continue
        joined = fact.join_dimensions(rows, early)
        if definition.where is not None:
            joined = select(joined, definition.where)
        outputs: list[tuple[str, Expression]] = [
            (key, Column(key)) for key in phase1_keys
        ]
        for output in definition.aggregates:
            source = (
                output.function.deletion_source()
                if deletion
                else output.function.insertion_source()
            )
            outputs.append((source_column(output.name), source))
        if policy is MinMaxPolicy.SPLIT:
            from ..relational.expressions import Literal

            for output in minmax_outputs(definition):
                value = output.function.argument
                outputs.append(
                    (ins_column(output.name),
                     Literal(None) if deletion else value)
                )
                outputs.append(
                    (del_column(output.name),
                     value if deletion else Literal(None))
                )
        sides.append(project(joined, outputs))

    pre = options.aggregate(
        union_all(sides),
        phase1_keys,
        _pre_specs(definition, policy),
        name=f"pre_{definition.name}",
    )

    joined = pre
    for dimension_name in delayed:
        fk = fact.foreign_key_for(dimension_name)
        joined = hash_join(
            joined, fk.dimension.table, on=[(fk.column, fk.dimension.key)]
        )

    return options.aggregate(
        joined,
        definition.group_by,
        _delta_specs(definition, policy),
        name=f"sd_{definition.name}",
    )


def _pre_specs(
    definition: SummaryViewDefinition, policy: MinMaxPolicy
) -> list[AggregateSpec]:
    """Phase-1 specs: like `_delta_specs` but the outputs keep their
    prepare-view source names so phase 2 can re-aggregate them."""
    specs: list[AggregateSpec] = [
        (
            source_column(output.name),
            Column(source_column(output.name)),
            output.function.delta_reducer(),
        )
        for output in definition.aggregates
    ]
    if policy is MinMaxPolicy.SPLIT:
        for output in minmax_outputs(definition):
            reducer_type = MinReducer if output.function.kind == "min" else MaxReducer
            specs.append(
                (ins_column(output.name), Column(ins_column(output.name)), reducer_type())
            )
            specs.append(
                (del_column(output.name), Column(del_column(output.name)), reducer_type())
            )
    return specs
