"""Atomic refresh: all-or-nothing application of a summary delta.

The paper assumes refresh runs inside an exclusive batch window, but a
production warehouse also needs refresh to be *atomic*: if the process
dies mid-refresh, readers must never see a summary table with half the
delta applied.  :func:`refresh_atomically` provides that guarantee on the
in-memory engine with an undo log:

1. decisions are computed first, read-only (the OUTER_JOIN discipline);
2. MIN/MAX recomputations run *before* any view mutation (they read base
   data, which is independent of the view);
3. mutations are applied one by one, each recording its inverse;
4. any failure rolls the log back in reverse order, restoring the exact
   pre-refresh contents.

The failure hook exists for fault-injection tests: it is invoked before
every mutation with the step index and may raise.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import InconsistentDeltaError, MaintenanceError
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..obs.lineage import record_publish as lineage_record_publish
from ..relational.table import charge_access
from ..views.materialize import MaterializedView
from .deltas import SummaryDelta
from .refresh import (
    GroupLocator,
    RecomputeFn,
    RefreshActions,
    RefreshPlan,
    RefreshStats,
    RefreshVariant,
    _record_refresh_stats,
    _refresh_impl,
    decide,
)

FailureHook = Callable[[int], None]

#: Fault-injection hook for the versioned path: invoked with the stage
#: name (``"build"`` before the shadow refresh, ``"publish"`` after the
#: shadow is complete but before the swap) and may raise.
StageHook = Callable[[str], None]


class UndoLog:
    """Inverse operations for the mutations applied so far."""

    def __init__(self, view: MaterializedView):
        self._view = view
        self._entries: list[tuple[str, Any]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def record_insert(self, slot: int) -> None:
        self._entries.append(("insert", slot))

    def record_delete(self, old_row: tuple) -> None:
        self._entries.append(("delete", old_row))

    def record_update(self, slot: int, old_row: tuple) -> None:
        self._entries.append(("update", (slot, old_row)))

    def rollback(self) -> None:
        """Undo everything, most recent first."""
        table = self._view.table
        for kind, payload in reversed(self._entries):
            if kind == "insert":
                table.delete_slot(payload)
            elif kind == "delete":
                table.insert(payload)
            else:
                slot, old_row = payload
                table.update_slot(slot, old_row)
        self._entries.clear()


def refresh_atomically(
    view: MaterializedView,
    delta: SummaryDelta,
    recompute: RecomputeFn | None = None,
    failure_hook: FailureHook | None = None,
) -> RefreshStats:
    """Apply *delta* to *view* atomically; roll back on any failure.

    Semantically identical to
    :func:`repro.core.refresh.refresh` — the decision logic is shared —
    but mutations are journaled and reverted if anything (including the
    injected *failure_hook*) raises.
    """
    if delta.definition.name != view.definition.name:
        raise MaintenanceError(
            f"delta for {delta.definition.name!r} applied to view "
            f"{view.definition.name!r}"
        )
    with tracing.span(
        "refresh_atomic", view=view.definition.name,
    ) as refresh_span:
        locator = GroupLocator(view)
        refresh_span.set_tag("indexed", locator.indexed)
        stats = _refresh_atomically_impl(
            view, delta, recompute, failure_hook, refresh_span, locator
        )
        _record_refresh_stats(refresh_span, stats, locator)
        view.freshness.mark_refreshed(stats.delta_rows)
        # Commit reached (a rollback raised past us): pin the delta's
        # batches to the view's new version stamp.
        lineage_record_publish(view, delta, mode="atomic")
        return stats


def refresh_versioned(
    view: MaterializedView,
    delta: SummaryDelta,
    recompute: RecomputeFn | None = None,
    variant: RefreshVariant = RefreshVariant.CURSOR,
    failure_hook: StageHook | None = None,
    validate: bool = True,
) -> RefreshStats:
    """Apply *delta* to a shadow copy of *view* and atomically publish it.

    The copy-on-refresh discipline behind concurrent serving:

    1. :meth:`~repro.views.materialize.MaterializedView.begin_version`
       copies the current epoch's table (rows + index definitions) into a
       private :class:`~repro.views.materialize.ShadowVersion` whose
       certificate is seeded O(1) from the live one;
    2. the shared Figure 7 machinery refreshes the shadow exactly as it
       would the live table — readers see none of it;
    3. :meth:`~repro.views.materialize.MaterializedView.publish` validates
       the shadow's incrementally-maintained certificate against a fresh
       digest of its rows (*validate*) and installs it with one reference
       swap.

    A failure anywhere — including the injected *failure_hook*, invoked
    with ``"build"`` then ``"publish"`` — simply abandons the shadow: the
    published epoch, its certificate, and every pinned reader snapshot
    are untouched, and committed epochs are never unpublished.
    """
    if delta.definition.name != view.definition.name:
        raise MaintenanceError(
            f"delta for {delta.definition.name!r} applied to view "
            f"{view.definition.name!r}"
        )
    with tracing.span(
        "refresh_versioned", view=view.definition.name, variant=variant.value,
    ) as span:
        shadow = view.begin_version()
        span.set_tag("base_epoch", shadow.base_epoch)
        if failure_hook is not None:
            failure_hook("build")
        locator = GroupLocator(shadow)
        span.set_tag("indexed", locator.indexed)
        stats = _refresh_impl(shadow, delta, recompute, variant, False, locator)
        if failure_hook is not None:
            failure_hook("publish")
        published = view.publish(shadow, validate=validate)
        span.set_tag("epoch", published.epoch)
        _record_refresh_stats(span, stats, locator)
        if tracing.enabled():
            obs_metrics.registry().counter("refresh.published_epochs").inc()
        view.freshness.mark_refreshed(stats.delta_rows)
        # Published — a failed build or publish raised before this point,
        # leaving no manifest; the batches became visible at this epoch.
        lineage_record_publish(view, delta, mode="versioned")
        return stats


def _refresh_atomically_impl(
    view: MaterializedView,
    delta: SummaryDelta,
    recompute: RecomputeFn | None,
    failure_hook: FailureHook | None,
    refresh_span,
    locator: GroupLocator,
) -> RefreshStats:
    plan = RefreshPlan(view.definition, delta.policy)
    stats = RefreshStats(delta_rows=len(delta.table))
    arity = plan.group_arity
    name = view.definition.name

    # Phase 1: read-only decisions, with every group probe resolved in one
    # batch pass up front (same access totals as the per-tuple loop: one
    # scan of the delta, one locator probe per delta row).
    actions = RefreshActions()
    delta_rows = delta.table.rows()
    charge_access("rows_scanned", len(delta_rows))
    keys = [delta_row[:arity] for delta_row in delta_rows]
    slots = list(map(locator.slot_of, keys))
    row_at = view.table.row_at
    for delta_row, key, slot in zip(delta_rows, keys, slots):
        old_row = row_at(slot) if slot is not None else None
        decide(plan, name, old_row, delta_row, key, slot, actions)

    # Phase 2: resolve recomputations before touching the view.
    recomputed_rows: list[tuple[int | None, tuple]] = []
    if actions.recomputes:
        if recompute is None:
            raise MaintenanceError(
                f"view {name!r}: refresh needs base-data recomputation but "
                "no recompute source was provided"
            )
        keys = [key for _slot, key in actions.recomputes]
        fresh = recompute(keys)
        for slot, key in actions.recomputes:
            values = fresh.get(key)
            if values is None:
                raise InconsistentDeltaError(
                    f"view {name!r}: group {key!r} flagged for recomputation "
                    "has no base rows, but its COUNT(*) is positive"
                )
            recomputed_rows.append((slot, key + values))

    # Phase 3: journaled application.
    undo = UndoLog(view)
    step = 0
    try:
        for row in actions.inserts:
            if failure_hook is not None:
                failure_hook(step)
            slot = view.table.insert(row)
            undo.record_insert(slot)
            stats.inserted += 1
            step += 1
        for slot in actions.deletes:
            if failure_hook is not None:
                failure_hook(step)
            old_row = view.table.delete_slot(slot)
            undo.record_delete(old_row)
            stats.deleted += 1
            step += 1
        for slot, new_row in actions.updates:
            if failure_hook is not None:
                failure_hook(step)
            old_row = view.table.row_at(slot)
            view.table.update_slot(slot, new_row)
            undo.record_update(slot, old_row)
            stats.updated += 1
            step += 1
        for slot, new_row in recomputed_rows:
            if failure_hook is not None:
                failure_hook(step)
            if slot is None:
                inserted_at = view.table.insert(new_row)
                undo.record_insert(inserted_at)
            else:
                old_row = view.table.row_at(slot)
                view.table.update_slot(slot, new_row)
                undo.record_update(slot, old_row)
            stats.recomputed += 1
            step += 1
    except BaseException as failure:
        undo_entries = len(undo)
        with tracing.span("rollback", view=name) as rollback_span:
            rollback_span.set_tag("cause", type(failure).__name__)
            rollback_span.add("undo_entries", undo_entries)
            rollback_span.add("rolled_back_steps", step)
            undo.rollback()
        if tracing.enabled():
            registry = obs_metrics.registry()
            registry.counter("refresh.rollbacks").inc()
            registry.counter("refresh.rolled_back_entries").inc(undo_entries)
        raise
    refresh_span.add("undo_entries", len(undo))
    if tracing.enabled():
        obs_metrics.registry().counter("refresh.undo_entries").inc(len(undo))
    return stats
