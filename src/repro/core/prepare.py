"""Prepare-changes views: per-change aggregate sources (paper, Section 4.1.1).

The *prepare-insertions* (``pi_``) and *prepare-deletions* (``pd_``) views
project the deferred changes — after applying the view's dimension joins and
selection — onto the view's group-by attributes plus one *aggregate-source*
column per stored aggregate, derived per the paper's Table 1.  Their
``UNION ALL`` is *prepare-changes* (``pc_``), the input the summary delta is
aggregated from.

Under the ``SPLIT`` min/max policy two extra source columns per MIN/MAX
aggregate carry the value on the insertion side only / deletion side only
(null on the other side), so the delta can keep insertion and deletion
extrema apart.
"""

from __future__ import annotations

from ..relational.expressions import Expression, Literal
from ..relational.operators import project, select, union_all
from ..relational.table import Table
from ..views.definition import SummaryViewDefinition
from ..warehouse.changes import ChangeSet
from .deltas import MinMaxPolicy, del_column, ins_column, minmax_outputs


def source_column(name: str) -> str:
    """Prepare-view column carrying the aggregate source for output *name*."""
    return f"_{name}"


def _prepare_one_side(
    definition: SummaryViewDefinition,
    change_rows: Table,
    deletion: bool,
    policy: MinMaxPolicy,
) -> Table:
    """Build ``pi_view`` (deletion=False) or ``pd_view`` (deletion=True).

    *change_rows* shares the fact table's schema, so the view's dimension
    joins and WHERE clause apply to it unchanged.
    """
    joined = definition.fact.join_dimensions(change_rows, definition.dimensions)
    if definition.where is not None:
        joined = select(joined, definition.where)

    outputs: list[tuple[str, Expression]] = [
        (attribute, _column_of(joined, attribute))
        for attribute in definition.group_by
    ]
    for output in definition.aggregates:
        source = (
            output.function.deletion_source()
            if deletion
            else output.function.insertion_source()
        )
        outputs.append((source_column(output.name), source))
    if policy is MinMaxPolicy.SPLIT:
        for output in minmax_outputs(definition):
            value = output.function.argument
            outputs.append(
                (ins_column(output.name), Literal(None) if deletion else value)
            )
            outputs.append(
                (del_column(output.name), value if deletion else Literal(None))
            )
    prefix = "pd" if deletion else "pi"
    return project(joined, outputs, name=f"{prefix}_{definition.name}")


def _column_of(table: Table, attribute: str) -> Expression:
    """Column reference helper (validates the attribute exists)."""
    from ..relational.expressions import Column

    table.schema.position(attribute)
    return Column(attribute)


def prepare_insertions(
    definition: SummaryViewDefinition,
    insertions: Table,
    policy: MinMaxPolicy = MinMaxPolicy.PAPER,
) -> Table:
    """The ``pi_view`` table for a batch of fact-table insertions."""
    return _prepare_one_side(definition, insertions, deletion=False, policy=policy)


def prepare_deletions(
    definition: SummaryViewDefinition,
    deletions: Table,
    policy: MinMaxPolicy = MinMaxPolicy.PAPER,
) -> Table:
    """The ``pd_view`` table for a batch of fact-table deletions."""
    return _prepare_one_side(definition, deletions, deletion=True, policy=policy)


def prepare_changes(
    definition: SummaryViewDefinition,
    changes: ChangeSet,
    policy: MinMaxPolicy = MinMaxPolicy.PAPER,
) -> Table:
    """The ``pc_view`` table: ``pi_view UNION ALL pd_view``."""
    parts = []
    if len(changes.insertions):
        parts.append(prepare_insertions(definition, changes.insertions, policy))
    if len(changes.deletions):
        parts.append(prepare_deletions(definition, changes.deletions, policy))
    if not parts:
        # An empty prepare-changes table with the right schema.
        parts.append(prepare_insertions(definition, changes.insertions, policy))
    return union_all(parts, name=f"pc_{definition.name}")
