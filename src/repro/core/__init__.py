"""The summary-delta maintenance core: propagate and refresh."""

from .baselines import (
    GroupRecomputeResult,
    maintain_by_group_recompute,
    rematerialize_views,
)
from .compensation import read_through_delta
from .deltas import MinMaxPolicy, SummaryDelta
from .dimension_changes import (
    compute_summary_delta_combined,
    prepare_changes_combined,
)
from .maintenance import MaintenanceResult, base_recompute_fn, maintain_view
from .prepare import prepare_changes, prepare_deletions, prepare_insertions
from .propagate import PropagateOptions, classify_dimensions, compute_summary_delta
from .recompute import (
    IndexRecomputePlan,
    plan_index_recompute,
    recompute_groups_via_index,
)
from .refresh import (
    RefreshMode,
    RefreshStats,
    RefreshVariant,
    apply_refresh,
    refresh,
    resolve_refresh_mode,
    versioned_default,
)
from .transactional import UndoLog, refresh_atomically, refresh_versioned

__all__ = [
    "GroupRecomputeResult",
    "IndexRecomputePlan",
    "MaintenanceResult",
    "MinMaxPolicy",
    "PropagateOptions",
    "RefreshMode",
    "RefreshStats",
    "RefreshVariant",
    "SummaryDelta",
    "UndoLog",
    "apply_refresh",
    "base_recompute_fn",
    "classify_dimensions",
    "compute_summary_delta",
    "compute_summary_delta_combined",
    "maintain_by_group_recompute",
    "maintain_view",
    "plan_index_recompute",
    "prepare_changes",
    "prepare_changes_combined",
    "prepare_deletions",
    "prepare_insertions",
    "read_through_delta",
    "recompute_groups_via_index",
    "rematerialize_views",
    "refresh",
    "refresh_atomically",
    "refresh_versioned",
    "resolve_refresh_mode",
    "versioned_default",
]
