"""Compensated reads: query a stale view through its pending delta.

The propagate/refresh split ([CGL+96], which the paper builds on) enables
one more trick: once a summary delta has been *computed*, readers can see
up-to-date results **before** refresh runs, by compensating the stale view
with the delta at read time.  The warehouse thus serves fresh answers even
while the batch window is still hours away.

:func:`read_through_delta` materialises that compensated state into a
fresh table, leaving the stored view untouched.  It reuses the refresh
decision logic, so compensated reads and the eventual refresh can never
disagree.
"""

from __future__ import annotations

from ..relational.table import Table
from ..views.materialize import MaterializedView
from .deltas import SummaryDelta
from .refresh import RecomputeFn, RefreshVariant, refresh


def read_through_delta(
    view: MaterializedView,
    delta: SummaryDelta,
    recompute: RecomputeFn | None = None,
    table: "Table | None" = None,
) -> MaterializedView:
    """Return a *copy* of the view with *delta* applied.

    The stored view is not modified; the returned
    :class:`~repro.views.materialize.MaterializedView` is a transient
    snapshot suitable for answering queries (e.g. via
    :meth:`~repro.views.materialize.MaterializedView.read` or the query
    router).

    *table* optionally supplies the stored state to compensate — a caller
    that pinned a :class:`~repro.views.materialize.ViewVersion` passes its
    table here so the compensated read starts from that exact epoch; the
    default is the view's current table.

    MIN/MAX caveats: when the delta threatens a stored extremum, refresh
    consults base data through *recompute*.  During the online window the
    base table has **not** yet absorbed the changes, so a recompute-needing
    read would see pre-change base data and be wrong for deleted extrema.
    Pass ``recompute=None`` (the default) to fail fast in that case rather
    than serve a wrong answer; views without MIN/MAX never need it.
    """
    source = table if table is not None else view.table
    snapshot = MaterializedView(view.definition, source.copy())
    refresh(
        snapshot,
        delta,
        recompute=recompute,
        variant=RefreshVariant.OUTER_JOIN,
    )
    return snapshot
