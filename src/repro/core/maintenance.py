"""Single-view maintenance driver: propagate → apply base → refresh.

:func:`maintain_view` runs the full summary-delta pipeline for one summary
table, timing each phase with the batch-window clock:

1. *propagate* (online): compute the summary delta from the deferred
   change set — the summary table is not locked;
2. *apply base changes* (offline): update the base fact table;
3. *refresh* (offline): apply the delta to the summary table, recomputing
   MIN/MAX groups from the updated base data where Figure 7 requires it.

Maintaining *many* views together, sharing work along the D-lattice, is the
job of :mod:`repro.lattice.plan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.aggregation import group_by as physical_group_by
from ..relational.expressions import col
from ..relational.operators import select
from ..relational.table import Table
from ..views.definition import SummaryViewDefinition
from ..views.materialize import MaterializedView
from ..warehouse.batch import BatchReport, BatchWindowClock
from ..warehouse.changes import ChangeSet
from .deltas import SummaryDelta
from .propagate import PropagateOptions, compute_summary_delta
from .refresh import GroupKey, RecomputeFn, RefreshStats, RefreshVariant, refresh


def base_recompute_fn(
    definition: SummaryViewDefinition,
    use_index: bool = True,
) -> RecomputeFn:
    """Build the batched MIN/MAX recomputation callback for a view.

    The callback reads the fact table *as it stands when called* — i.e.
    after the deferred changes have been applied, matching the paper's
    assumption — and chooses between two strategies per invocation:

    * **index-assisted** (:mod:`repro.core.recompute`): probe a composite
      fact index with the candidate keys each group implies — the
      RDBMS-optimizer plan, cost independent of the fact-table size;
    * **batched scan**: one filtered pass over fact ⋈ dimensions for all
      requested groups — the fallback when no feasible index exists or the
      probe count would exceed the scan.

    Both produce identical values (cross-tested); ``use_index=False``
    forces the scan.
    """

    def recompute_by_scan(keys: list[GroupKey]) -> dict[GroupKey, tuple]:
        wanted = set(keys)
        source = definition.fact.join_dimensions(
            definition.fact.table, definition.dimensions
        )
        if definition.where is not None:
            source = select(source, definition.where)
        key_positions = source.schema.positions(definition.group_by)

        filtered = Table(f"recompute_{definition.name}", source.schema)
        for row in source.scan():
            if tuple(row[p] for p in key_positions) in wanted:
                filtered.insert(row)

        aggregates = [
            (output.name,
             output.function.argument if output.function.argument is not None
             else col(source.schema.columns[0]),
             output.function.base_reducer())
            for output in definition.aggregates
        ]
        grouped = physical_group_by(filtered, definition.group_by, aggregates)
        arity = len(definition.group_by)
        return {row[:arity]: row[arity:] for row in grouped.scan()}

    def recompute(keys: list[GroupKey]) -> dict[GroupKey, tuple]:
        if use_index:
            from .recompute import plan_index_recompute, recompute_groups_via_index

            plan = plan_index_recompute(definition)
            if plan is not None:
                estimated_probes = plan.estimated_probes_per_group * len(keys)
                if estimated_probes < len(definition.fact.table):
                    return recompute_groups_via_index(plan, keys)
        return recompute_by_scan(keys)

    return recompute


@dataclass
class MaintenanceResult:
    """Everything one maintenance run produced."""

    delta: SummaryDelta
    stats: RefreshStats
    report: BatchReport


def maintain_view(
    view: MaterializedView,
    changes: ChangeSet,
    options: PropagateOptions = PropagateOptions(),
    variant: RefreshVariant = RefreshVariant.CURSOR,
    apply_base_changes: bool = True,
    clock: BatchWindowClock | None = None,
) -> MaintenanceResult:
    """Maintain one summary table through the summary-delta method.

    Set ``apply_base_changes=False`` when the caller has already applied the
    change set to the base fact table (e.g. when maintaining several views
    over the same fact table); the change set itself is never cleared here.
    """
    clock = clock or BatchWindowClock()

    with clock.online(f"propagate:{view.name}"):
        delta = compute_summary_delta(view.definition, changes, options)

    if apply_base_changes:
        with clock.offline("apply-base"):
            changes.apply_to(view.definition.fact.table)

    with clock.offline(f"refresh:{view.name}"):
        stats = refresh(
            view,
            delta,
            recompute=base_recompute_fn(view.definition),
            variant=variant,
        )
    return MaintenanceResult(delta=delta, stats=stats, report=clock.report)
