"""repro — a reproduction of "Maintenance of Data Cubes and Summary Tables
in a Warehouse" (Mumick, Quass & Mumick, SIGMOD 1997).

The package implements the paper's *summary-delta table method* for
incrementally maintaining aggregate materialised views, together with every
substrate it needs: an in-memory relational engine, a star-schema warehouse
layer, generalized cube views, cube/dimension lattices, and the multi-view
(V-/D-lattice) maintenance machinery.

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import (
        CountStar, Sum, col,
        DimensionTable, FactTable, ForeignKey, Warehouse,
        SummaryViewDefinition, maintain_view,
    )

    warehouse = Warehouse()
    warehouse.add_fact(pos)                       # a FactTable
    view = warehouse.define_summary_table(        # materialise + index
        SummaryViewDefinition.create(
            "SID_sales", pos,
            group_by=["storeID", "itemID", "date"],
            aggregates=[("TotalCount", CountStar()),
                        ("TotalQuantity", Sum(col("qty")))]))

    changes = warehouse.pending_changes("pos")    # defer changes all day
    changes.insert((1, 10, 5, 2, 9.99))
    result = maintain_view(view, changes)         # propagate → refresh

Multi-view maintenance along the lattice: :func:`repro.maintain_lattice`.
"""

from .aggregates import (
    AggregateClass,
    AggregateFunction,
    Avg,
    Count,
    CountDistinct,
    CountStar,
    Max,
    Median,
    Min,
    SelfMaintainability,
    Sum,
)
from .core import (
    MaintenanceResult,
    MinMaxPolicy,
    PropagateOptions,
    RefreshStats,
    RefreshVariant,
    SummaryDelta,
    compute_summary_delta,
    compute_summary_delta_combined,
    maintain_by_group_recompute,
    maintain_view,
    prepare_changes,
    rematerialize_views,
    refresh,
)
from .errors import (
    DefinitionError,
    DerivationError,
    InconsistentDeltaError,
    LatticeError,
    MaintenanceError,
    PublishError,
    ReproError,
    SchemaError,
    TableError,
    UnsupportedAggregateError,
    WorkloadError,
)
from .obs import (
    MetricsRegistry,
    Span,
    TraceRecorder,
    format_span_tree,
    install_recorder,
    span,
    trace,
    trace_summary,
    write_trace_jsonl,
)
from .obs import registry as metrics_registry
from .lattice import (
    EdgeQuery,
    LatticeMaintenanceResult,
    ViewLattice,
    build_lattice_for_views,
    combined_lattice,
    cube_lattice,
    greedy_select,
    maintain_lattice,
    make_lattice_friendly,
    propagate_lattice,
    propagate_without_lattice,
    rematerialize_with_lattice,
)
from .query import AggregateQuery, QueryPlan, QueryRouter
from .relational import Schema, Table, col, lit
from .sqlite_backend import SqliteWarehouse
from .views import (
    MaterializedView,
    SummaryViewDefinition,
    compute_rows,
    render_summary_delta_sql,
    render_view_sql,
)
from .warehouse import (
    BatchReport,
    BatchWindowClock,
    ChangeSet,
    DimensionHierarchy,
    DimensionTable,
    FactTable,
    ForeignKey,
    NightlyResult,
    Warehouse,
    run_nightly_maintenance,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateClass",
    "AggregateFunction",
    "AggregateQuery",
    "Avg",
    "BatchReport",
    "BatchWindowClock",
    "ChangeSet",
    "Count",
    "CountDistinct",
    "CountStar",
    "DefinitionError",
    "DerivationError",
    "DimensionHierarchy",
    "DimensionTable",
    "EdgeQuery",
    "FactTable",
    "ForeignKey",
    "InconsistentDeltaError",
    "LatticeError",
    "LatticeMaintenanceResult",
    "MaintenanceError",
    "MaintenanceResult",
    "MaterializedView",
    "Max",
    "Median",
    "MetricsRegistry",
    "Min",
    "MinMaxPolicy",
    "NightlyResult",
    "PropagateOptions",
    "PublishError",
    "QueryPlan",
    "QueryRouter",
    "RefreshStats",
    "RefreshVariant",
    "ReproError",
    "Schema",
    "SchemaError",
    "SelfMaintainability",
    "Span",
    "SqliteWarehouse",
    "Sum",
    "SummaryDelta",
    "SummaryViewDefinition",
    "Table",
    "TableError",
    "TraceRecorder",
    "UnsupportedAggregateError",
    "ViewLattice",
    "Warehouse",
    "WorkloadError",
    "build_lattice_for_views",
    "col",
    "combined_lattice",
    "compute_rows",
    "compute_summary_delta",
    "compute_summary_delta_combined",
    "cube_lattice",
    "format_span_tree",
    "greedy_select",
    "install_recorder",
    "lit",
    "maintain_by_group_recompute",
    "maintain_lattice",
    "maintain_view",
    "make_lattice_friendly",
    "metrics_registry",
    "prepare_changes",
    "propagate_lattice",
    "propagate_without_lattice",
    "refresh",
    "rematerialize_views",
    "rematerialize_with_lattice",
    "render_summary_delta_sql",
    "render_view_sql",
    "run_nightly_maintenance",
    "span",
    "trace",
    "trace_summary",
    "write_trace_jsonl",
    "__version__",
]
