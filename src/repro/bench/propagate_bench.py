"""Micro-benchmark for the parallel propagate engine (§4.1.2).

Measures the three rungs of the engine on a pos-shaped aggregation — the
exact hot loop of summary-delta computation:

* **serial** — the seed path: interpreted ``group_by`` with per-row closure
  dispatch (``compiled=False`` forces it);
* **compiled** — the same call through the codegen fast path
  (:mod:`repro.relational.codegen`);
* **parallel** — ``group_by_chunked`` with compiled chunk folds on an
  executor backend, partial states merged via ``Reducer.merge``.

A second section times :func:`~repro.lattice.plan.propagate_lattice` over
the Figure 9 retail lattice, serial walk vs level-parallel scheduling, and
cross-checks that the deltas are identical.  The ``shared_scan`` section
additionally times the stacked shared-scan + chunked-parallel engine, and
the ``partition`` section times serial vs date-sharded propagation through
:mod:`repro.warehouse.partition` (per-shard summary deltas on a process
pool, merged with ``Reducer.merge``).

Results are printed and merged into ``BENCH_propagate.json`` at the repo
root (see :func:`repro.bench.reporting.write_bench_json`), seeding the
machine-readable perf trajectory.

Run as::

    PYTHONPATH=src python -m repro.bench.propagate_bench [--quick]
"""

from __future__ import annotations

import argparse
import math
import os
import random
import time
from typing import Callable, Sequence

from ..core.propagate import PropagateOptions, compute_summary_delta
from ..core.refresh import refresh
from ..lattice.plan import (
    build_lattice_for_views,
    effective_level_workers,
    propagate_lattice,
    propagation_levels,
    refresh_lattice,
)
from ..obs import tracing
from ..relational.stats import measuring
from ..relational.aggregation import (
    AggregateSpec,
    MaxReducer,
    MinReducer,
    SumReducer,
    group_by,
    group_by_chunked,
)
from ..relational.expressions import col, lit
from ..relational.table import Table
from ..views.materialize import MaterializedView
from ..workload.changes import update_generating_changes
from ..workload.generator import RetailConfig, generate_retail
from ..workload.retail import retail_view_definitions
from .reporting import write_bench_json

#: Group keys and workload shape mirror the pos fact table and its
#: summary-delta aggregation (SUM/COUNT deltas plus MIN/MAX companions).
#: storeID x date gives ~80 input rows per group at the default scale,
#: matching the store/date-grained retail summary views.
MICRO_KEYS = ("storeID", "date")
DEFAULT_ROWS = 200_000
DEFAULT_REPEATS = 3


def build_pos_shaped_table(rows: int, seed: int = 97) -> Table:
    """A synthetic pos-shaped table: uniform store/item/date, nullable
    qty/price (aggregation must exercise the null-skipping branches)."""
    rng = random.Random(seed)
    data = []
    for _ in range(rows):
        qty = None if rng.random() < 0.03 else rng.randint(1, 10)
        price = None if rng.random() < 0.03 else round(rng.uniform(0.5, 99.5), 2)
        data.append(
            (rng.randrange(100), rng.randrange(200), rng.randrange(25), qty, price)
        )
    return Table("pos_bench", ["storeID", "itemID", "date", "qty", "price"], data)


def delta_style_specs() -> list[AggregateSpec]:
    """Aggregates shaped like a summary-delta computation: COUNT(*) and SUM
    deltas (SumReducer over the Table 1 sources) plus MIN/MAX companions."""
    return [
        ("_count", lit(1), SumReducer()),
        ("total_qty", col("qty"), SumReducer()),
        ("total_dollars", col("qty") * col("price"), SumReducer()),
        ("min_price", col("price"), MinReducer()),
        ("max_price", col("price"), MaxReducer()),
    ]


def _rows_equivalent(expected, actual) -> bool:
    """Row-set equality, tolerating last-ulp drift in float aggregates."""
    if len(expected) != len(actual):
        return False
    for row_a, row_b in zip(expected, actual):
        for a, b in zip(row_a, row_b):
            if a == b:
                continue
            if isinstance(a, float) and isinstance(b, float):
                if math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
                    continue
            return False
    return True


def _best_of(thunk: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


def run_micro(
    rows: int = DEFAULT_ROWS,
    chunks: int | None = None,
    backend: str = "thread",
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Time serial / compiled / parallel aggregation on *rows* input rows."""
    chunks = chunks or (os.cpu_count() or 4)
    table = build_pos_shaped_table(rows)
    specs = delta_style_specs()
    keys = list(MICRO_KEYS)

    serial = group_by(table, keys, specs, compiled=False)
    compiled = group_by(table, keys, specs, compiled=True)
    parallel = group_by_chunked(table, keys, specs, chunks=chunks, backend=backend)
    if serial.rows() != compiled.rows():
        raise AssertionError(
            "propagate engine paths disagree: compiled output does not "
            "match the serial group_by"
        )
    # Chunked float SUMs associate across chunk boundaries, so they can
    # differ from the serial fold in the last ulp; everything else is exact.
    if not _rows_equivalent(serial.rows(), parallel.rows()):
        raise AssertionError(
            "propagate engine paths disagree: parallel chunked output does "
            "not match the serial group_by"
        )

    serial_s = _best_of(lambda: group_by(table, keys, specs, compiled=False), repeats)
    compiled_s = _best_of(lambda: group_by(table, keys, specs, compiled=True), repeats)
    parallel_s = _best_of(
        lambda: group_by_chunked(table, keys, specs, chunks=chunks, backend=backend),
        repeats,
    )
    return {
        "rows": rows,
        "groups": len(serial),
        "chunks": chunks,
        "backend": backend,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "serial_group_by_s": round(serial_s, 6),
        "compiled_group_by_s": round(compiled_s, 6),
        "parallel_chunked_s": round(parallel_s, 6),
        "speedup_compiled": round(serial_s / compiled_s, 3),
        "speedup_compiled_parallel": round(serial_s / parallel_s, 3),
    }


def run_lattice(
    pos_rows: int = 50_000, change_size: int = 5_000, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Time serial vs level-parallel lattice propagate on the retail views."""
    data = generate_retail(RetailConfig(pos_rows=pos_rows, seed=1997))
    views = [
        MaterializedView.build(definition)
        for definition in retail_view_definitions(data.pos)
    ]
    changes = update_generating_changes(data.pos, data.config, change_size, data.rng)
    lattice = build_lattice_for_views(views)

    serial_options = PropagateOptions()
    parallel_options = PropagateOptions(level_parallel=True, parallel=True)

    serial_deltas = propagate_lattice(lattice, changes, serial_options)
    parallel_deltas = propagate_lattice(lattice, changes, parallel_options)
    for name, delta in serial_deltas.items():
        if not _rows_equivalent(
            delta.table.sorted_rows(), parallel_deltas[name].table.sorted_rows()
        ):
            raise AssertionError(f"level-parallel delta differs for {name!r}")

    serial_s = _best_of(
        lambda: propagate_lattice(lattice, changes, serial_options), repeats
    )
    parallel_s = _best_of(
        lambda: propagate_lattice(lattice, changes, parallel_options), repeats
    )
    workers, fallback = effective_level_workers(
        parallel_options, propagation_levels(lattice)
    )
    result = {
        "pos_rows": pos_rows,
        "change_size": change_size,
        "views": list(lattice.order),
        "repeats": repeats,
        "serial_propagate_s": round(serial_s, 6),
        "level_parallel_propagate_s": round(parallel_s, 6),
        "level_parallel_workers": workers,
        "level_parallel_fallback": fallback,
    }
    if fallback:
        # The dispatcher degraded to the serial walk (one usable CPU), so a
        # "speedup" would just be noise around 1.0x measured twice; record
        # why instead of a misleading ratio.
        result["fallback_reason"] = "single_cpu"
    else:
        result["speedup_level_parallel"] = round(serial_s / parallel_s, 3)
    return result


def _access_units(snapshot: dict) -> int:
    """Sum a stats snapshot's access counters (``as_dict`` includes a
    precomputed ``total`` key that must not be double-counted)."""
    return sum(value for key, value in snapshot.items() if key != "total")


def run_shared_scan(
    pos_rows: int = 50_000, change_size: int = 5_000, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Time lattice propagate with the shared-scan engine off vs on.

    The shared engine (:mod:`repro.relational.fused`) replaces each sibling
    group's k join+aggregate pipelines with one fused pass over the parent's
    summary delta.  Both runs must produce byte-identical deltas — same
    rows, same order — which is asserted before anything is timed.
    """
    data = generate_retail(RetailConfig(pos_rows=pos_rows, seed=1997))
    views = [
        MaterializedView.build(definition)
        for definition in retail_view_definitions(data.pos)
    ]
    changes = update_generating_changes(data.pos, data.config, change_size, data.rng)
    lattice = build_lattice_for_views(views)

    legacy_options = PropagateOptions(shared_scan=False)
    shared_options = PropagateOptions(shared_scan=True)

    legacy = propagate_lattice(lattice, changes, legacy_options)
    shared = propagate_lattice(lattice, changes, shared_options)
    for name, delta in legacy.items():
        if delta.table.rows() != shared[name].table.rows():
            raise AssertionError(f"shared-scan delta differs for {name!r}")

    with measuring() as measured:
        propagate_lattice(lattice, changes, legacy_options)
    legacy_units = _access_units(measured.snapshot().as_dict())
    with measuring() as measured:
        propagate_lattice(lattice, changes, shared_options)
    shared_units = _access_units(measured.snapshot().as_dict())

    # Stacked engine: the fused sibling kernels now run inside each
    # chunk worker (``FusedScan.fold_chunked``), so the shared-scan and
    # chunked-parallel speedups compose instead of excluding each other.
    stacked_options = PropagateOptions(shared_scan=True, parallel=True)
    stacked = propagate_lattice(lattice, changes, stacked_options)
    for name, delta in legacy.items():
        if not _rows_equivalent(
            delta.table.sorted_rows(), stacked[name].table.sorted_rows()
        ):
            raise AssertionError(
                f"shared-scan+parallel delta differs for {name!r}"
            )

    legacy_s = _best_of(
        lambda: propagate_lattice(lattice, changes, legacy_options), repeats
    )
    shared_s = _best_of(
        lambda: propagate_lattice(lattice, changes, shared_options), repeats
    )
    parallel_s = _best_of(
        lambda: propagate_lattice(lattice, changes, stacked_options), repeats
    )
    groups = [list(group) for group in lattice.sibling_groups()]
    return {
        "pos_rows": pos_rows,
        "change_size": change_size,
        "repeats": repeats,
        "sibling_groups": groups,
        "scans_saved": sum(len(group) - 1 for group in groups),
        "legacy_propagate_s": round(legacy_s, 6),
        "shared_propagate_s": round(shared_s, 6),
        "parallel_propagate_s": round(parallel_s, 6),
        "speedup_shared_scan": round(legacy_s / shared_s, 3),
        "speedup_shared_parallel": round(legacy_s / parallel_s, 3),
        "legacy_access_units": legacy_units,
        "shared_access_units": shared_units,
        "access_units_saved": legacy_units - shared_units,
    }


def run_partition(
    pos_rows: int = 50_000,
    change_size: int = 5_000,
    width: int | None = None,
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Serial vs date-sharded propagate over the retail lattice.

    The change set is generated *before* the fact table is partitioned
    (routing must split the exact same rows), then the same propagation
    runs through :func:`~repro.warehouse.partition.propagate_partitioned`:
    per-shard summary deltas on the process pool, merged with
    ``Reducer.merge``.  The merged deltas must match the serial ones
    before anything is timed.  Recorded invariants: the routed per-shard
    change rows sum exactly to the change-set size, and per-shard access
    units are reported next to the serial total (shards re-scan dimension
    build sides, so their access total bounds the serial one from above).
    Like the ``lattice`` section, a single-CPU host records
    ``fallback_reason`` instead of a meaningless speedup.
    """
    from ..warehouse.partition import partition_fact, propagate_partitioned

    data = generate_retail(RetailConfig(pos_rows=pos_rows, seed=1997))
    views = [
        MaterializedView.build(definition)
        for definition in retail_view_definitions(data.pos)
    ]
    changes = update_generating_changes(data.pos, data.config, change_size, data.rng)
    lattice = build_lattice_for_views(views)
    options = PropagateOptions()

    serial_deltas = propagate_lattice(lattice, changes, options)
    with measuring() as measured:
        propagate_lattice(lattice, changes, options)
    serial_units = _access_units(measured.snapshot().as_dict())
    serial_s = _best_of(
        lambda: propagate_lattice(lattice, changes, options), repeats
    )

    width = width or max(1, data.config.n_dates // 8)
    partitioned = partition_fact(data.pos, width=width)
    sharded_deltas = propagate_partitioned(lattice, partitioned, changes, options)
    for name, delta in serial_deltas.items():
        if not _rows_equivalent(
            delta.table.sorted_rows(), sharded_deltas[name].table.sorted_rows()
        ):
            raise AssertionError(f"sharded delta differs for {name!r}")
    sharded_s = _best_of(
        lambda: propagate_partitioned(lattice, partitioned, changes, options),
        repeats,
    )
    info = partitioned.last_run
    shard_change_total = sum(stats.change_rows for stats in info.shards)
    if shard_change_total != changes.size():
        raise AssertionError(
            f"routed shard change rows ({shard_change_total}) do not sum to "
            f"the change-set size ({changes.size()})"
        )
    result = {
        "pos_rows": pos_rows,
        "change_size": change_size,
        "repeats": repeats,
        "shards": info.shard_count,
        "width": width,
        "shard_workers": info.workers,
        "pool": info.pool,
        "serial_propagate_s": round(serial_s, 6),
        "sharded_propagate_s": round(sharded_s, 6),
        "serial_access_units": serial_units,
        "per_shard": [
            {
                "key": stats.key,
                "change_rows": stats.change_rows,
                "delta_rows": stats.delta_rows,
                "access_units": stats.access_units,
            }
            for stats in info.shards
        ],
        "shard_change_rows_total": shard_change_total,
        "shard_access_units_total": sum(
            stats.access_units for stats in info.shards
        ),
    }
    if not info.pool:
        # One effective worker: the driver ran the shards inline, so a
        # "speedup" would be pure pool-bookkeeping noise around 1.0x.
        result["fallback_reason"] = "single_cpu"
    else:
        result["speedup_sharded"] = round(serial_s / sharded_s, 3)
    return result


def run_columnar(
    pos_rows: int = 50_000, change_size: int = 5_000, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Time lattice propagate with row-store vs columnar table storage.

    The whole workload (fact, dimensions, views, change set) is rebuilt
    under each ``REPRO_COLUMNAR`` setting, because a table's storage is
    fixed at construction.  Both modes must produce equivalent deltas and
    identical access-unit totals for propagate (the batch operators charge
    exactly what the row paths charge); the speedup comes from batch table
    construction and column-wise operators replacing per-row tuple
    materialisation.  Refresh access units are measured too — the batched
    Figure 7 apply path must stay no worse than the indexed row path.
    """

    def with_mode(flag: str | None):
        prior = os.environ.get("REPRO_COLUMNAR")
        if flag is None:
            os.environ.pop("REPRO_COLUMNAR", None)
        else:
            os.environ["REPRO_COLUMNAR"] = flag

        def restore() -> None:
            if prior is None:
                os.environ.pop("REPRO_COLUMNAR", None)
            else:
                os.environ["REPRO_COLUMNAR"] = prior

        return restore

    modes: dict[str, dict] = {}
    delta_snapshots: dict[str, dict[str, list]] = {}
    for mode, flag in (("row", "0"), ("columnar", "1")):
        restore = with_mode(flag)
        try:
            data = generate_retail(RetailConfig(pos_rows=pos_rows, seed=1997))
            views = [
                MaterializedView.build(definition)
                for definition in retail_view_definitions(data.pos)
            ]
            changes = update_generating_changes(
                data.pos, data.config, change_size, data.rng
            )
            lattice = build_lattice_for_views(views)
            options = PropagateOptions()

            deltas = propagate_lattice(lattice, changes, options)
            delta_snapshots[mode] = {
                name: delta.table.sorted_rows()
                for name, delta in deltas.items()
            }
            with measuring() as measured:
                propagate_lattice(lattice, changes, options)
            propagate_units = _access_units(measured.snapshot().as_dict())
            propagate_s = _best_of(
                lambda: propagate_lattice(lattice, changes, options), repeats
            )

            # Refresh: apply base changes first (the paper's assumption),
            # then measure the Figure 7 apply path once per mode.
            changes.apply_to(data.pos.table)
            with measuring() as measured:
                refresh_lattice(
                    {view.name: view for view in views}, deltas
                )
            refresh_units = _access_units(measured.snapshot().as_dict())
        finally:
            restore()
        modes[mode] = {
            "propagate_s": propagate_s,
            "propagate_access_units": propagate_units,
            "refresh_access_units": refresh_units,
        }

    for name, rows_of_view in delta_snapshots["row"].items():
        if not _rows_equivalent(rows_of_view, delta_snapshots["columnar"][name]):
            raise AssertionError(f"columnar delta differs for {name!r}")

    row, columnar = modes["row"], modes["columnar"]
    return {
        "pos_rows": pos_rows,
        "change_size": change_size,
        "repeats": repeats,
        "row_propagate_s": round(row["propagate_s"], 6),
        "columnar_propagate_s": round(columnar["propagate_s"], 6),
        "speedup_columnar": round(
            row["propagate_s"] / columnar["propagate_s"], 3
        ),
        "row_access_units": row["propagate_access_units"],
        "columnar_access_units": columnar["propagate_access_units"],
        "row_refresh_access_units": row["refresh_access_units"],
        "columnar_refresh_access_units": columnar["refresh_access_units"],
    }


def run_refresh_index(
    pos_scales: Sequence[int] = (4_000, 16_000), change_size: int = 400
) -> dict:
    """Show refresh locates groups in O(|summary-delta|) tuple accesses with
    the group-key index and O(|summary table|) without it.

    The same fixed-size change set is refreshed into warehouses of growing
    scale, once per locator mode (``REPRO_REFRESH_INDEX`` 1/0).  Only the
    SUM/COUNT retail views participate: MIN/MAX views can trigger base-data
    recomputation, whose O(|fact|) scans would drown the lookup cost being
    measured in both modes.  Under the index the access total tracks the
    (flat) delta size; the scan fallback grows with the summary tables.
    Final summary tables must be identical across modes, and the refresh
    must leave every group-key index exact (``Table.verify_indexes``).
    """
    scales: list[dict] = []
    definitions: list = []
    for pos_rows in pos_scales:
        data = generate_retail(RetailConfig(pos_rows=pos_rows, seed=7))
        definitions = [
            definition for definition in retail_view_definitions(data.pos)
            if all(
                output.function.kind not in ("min", "max")
                for output in definition.aggregates
            )
        ]
        changes = update_generating_changes(
            data.pos, data.config, change_size, data.rng
        )
        entry: dict = {"pos_rows": pos_rows}
        finals: dict[str, dict] = {}
        for mode, flag in (("indexed", "1"), ("scan", "0")):
            prior = os.environ.get("REPRO_REFRESH_INDEX")
            os.environ["REPRO_REFRESH_INDEX"] = flag
            try:
                views = [MaterializedView.build(d) for d in definitions]
                deltas = [
                    compute_summary_delta(view.definition, changes)
                    for view in views
                ]
                with measuring() as measured:
                    for view, delta in zip(views, deltas):
                        refresh(view, delta)
                units = _access_units(measured.snapshot().as_dict())
            finally:
                if prior is None:
                    os.environ.pop("REPRO_REFRESH_INDEX", None)
                else:
                    os.environ["REPRO_REFRESH_INDEX"] = prior
            finals[mode] = {
                view.definition.name: view.table.sorted_rows() for view in views
            }
            entry[f"{mode}_access_units"] = units
            if mode == "indexed":
                entry["summary_rows"] = sum(len(view.table) for view in views)
                entry["delta_rows"] = sum(len(delta.table) for delta in deltas)
                if not all(view.table.verify_indexes() for view in views):
                    raise AssertionError(
                        "refresh left a group-key index inconsistent"
                    )
        if finals["indexed"] != finals["scan"]:
            raise AssertionError("refresh modes disagree on final summary tables")
        scales.append(entry)

    first, last = scales[0], scales[-1]

    def growth(key: str) -> float | None:
        return round(last[key] / first[key], 3) if first[key] else None

    return {
        "change_size": change_size,
        "views": [definition.name for definition in definitions],
        "scales": scales,
        "summary_rows_growth": growth("summary_rows"),
        "indexed_access_growth": growth("indexed_access_units"),
        "scan_access_growth": growth("scan_access_units"),
    }


def run_trace_overhead(
    rows: int = DEFAULT_ROWS, repeats: int = DEFAULT_REPEATS
) -> dict:
    """Measure the cost of the observability layer on the propagate hot loop.

    Times the compiled ``group_by`` micro-workload untraced and again under
    an active :class:`~repro.obs.tracing.TraceRecorder`, in one process.
    Instrumentation fires per *operation*, never per row, so the traced run
    should stay within a few percent of the untraced one; the ISSUE budget
    is <3% at 200k rows, and the CI smoke fails above 5%.

    Under ``REPRO_TRACE=0`` the kill-switch makes the "traced" run a no-op
    recorder, so the measured overhead is of the disabled fast path itself.
    """
    table = build_pos_shaped_table(rows)
    specs = delta_style_specs()
    keys = list(MICRO_KEYS)
    ambient = tracing.enabled()
    # Keep each timed sample around 100ms of folded work so small --rows
    # settings (the --quick smoke) don't shrink samples into the
    # scheduler-noise floor.
    calls_per_sample = max(1, min(50, 200_000 // max(rows, 1)))

    def untraced() -> None:
        for _ in range(calls_per_sample):
            group_by(table, keys, specs, compiled=True)

    def traced() -> None:
        with tracing.trace():
            for _ in range(calls_per_sample):
                group_by(table, keys, specs, compiled=True)

    # The per-call overhead (one span + a handful of counter adds) is far
    # below single-sample timing noise on a shared box, so layer three
    # noise filters: each side of a pair is the best of `repeats` runs
    # (drops per-call scheduler bursts), adjacent pairs alternate which
    # mode goes first and are compared as ratios (cancels CPU-frequency
    # drift and ordering bias), and the verdict is the median round-median
    # (a sustained throughput shift during one round cannot swing it).
    untraced()
    traced()
    rounds = 3
    pairs_per_round = 6
    best_of = max(repeats, 3)
    untraced_best = float("inf")
    traced_best = float("inf")
    round_medians: list[float] = []
    for _ in range(rounds):
        ratios: list[float] = []
        for index in range(pairs_per_round):
            if index % 2 == 0:
                u = _best_of(untraced, best_of)
                t = _best_of(traced, best_of)
            else:
                t = _best_of(traced, best_of)
                u = _best_of(untraced, best_of)
            untraced_best = min(untraced_best, u)
            traced_best = min(traced_best, t)
            ratios.append(t / u if u > 0 else 1.0)
        ratios.sort()
        round_medians.append(ratios[len(ratios) // 2])
    round_medians.sort()
    overhead = round_medians[len(round_medians) // 2] - 1.0
    # Report per-call times so the numbers stay comparable to run_micro.
    untraced_s = untraced_best / calls_per_sample
    traced_s = traced_best / calls_per_sample
    return {
        "rows": rows,
        "repeats": repeats,
        "ambient_recorder": ambient,
        "kill_switch": tracing.trace_kill_switch(),
        "untraced_s": round(untraced_s, 6),
        "traced_s": round(traced_s, 6),
        "overhead_pct": round(overhead * 100.0, 2),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.propagate_bench",
        description="propagate-engine micro-benchmark (serial/compiled/parallel)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test scale (20k rows, 1 repeat) for CI",
    )
    parser.add_argument("--rows", type=int, default=None, help="input rows")
    parser.add_argument("--chunks", type=int, default=None, help="chunk count")
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="thread"
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output", default=None,
        help="JSON path (default: BENCH_propagate.json at the repo root)",
    )
    parser.add_argument(
        "--trace-threshold", type=float, default=None, metavar="PCT",
        help="fail (exit 1) if tracing overhead exceeds PCT percent",
    )
    args = parser.parse_args(argv)

    rows = args.rows or (20_000 if args.quick else DEFAULT_ROWS)
    repeats = args.repeats or (1 if args.quick else DEFAULT_REPEATS)

    micro = run_micro(rows=rows, chunks=args.chunks,
                      backend=args.backend, repeats=repeats)
    print(
        f"group_by over {micro['rows']:,} rows -> {micro['groups']:,} groups: "
        f"serial {micro['serial_group_by_s']:.3f}s, "
        f"compiled {micro['compiled_group_by_s']:.3f}s "
        f"({micro['speedup_compiled']:.2f}x), "
        f"compiled+parallel[{micro['backend']} x{micro['chunks']}] "
        f"{micro['parallel_chunked_s']:.3f}s "
        f"({micro['speedup_compiled_parallel']:.2f}x)"
    )

    lattice = run_lattice(
        pos_rows=max(rows // 4, 2_000),
        change_size=max(rows // 40, 500),
        repeats=repeats,
    )
    if "speedup_level_parallel" in lattice:
        verdict = f"({lattice['speedup_level_parallel']:.2f}x)"
    else:
        verdict = f"(fallback: {lattice['fallback_reason']})"
    print(
        f"propagate_lattice over {lattice['pos_rows']:,} pos rows, "
        f"{lattice['change_size']:,} changes: "
        f"serial {lattice['serial_propagate_s']:.3f}s, "
        f"level-parallel {lattice['level_parallel_propagate_s']:.3f}s "
        f"{verdict}"
    )

    shared = run_shared_scan(
        pos_rows=max(rows // 4, 2_000),
        change_size=max(rows // 40, 500),
        repeats=repeats,
    )
    print(
        f"shared-scan propagate over {shared['pos_rows']:,} pos rows, "
        f"{shared['change_size']:,} changes: "
        f"legacy {shared['legacy_propagate_s']:.3f}s, "
        f"shared {shared['shared_propagate_s']:.3f}s "
        f"({shared['speedup_shared_scan']:.2f}x, "
        f"shared+parallel {shared['parallel_propagate_s']:.3f}s "
        f"({shared['speedup_shared_parallel']:.2f}x), "
        f"{shared['scans_saved']} scans saved, "
        f"{shared['legacy_access_units']:,} -> "
        f"{shared['shared_access_units']:,} access units)"
    )

    partition = run_partition(
        pos_rows=max(rows // 4, 2_000),
        change_size=max(rows // 40, 500),
        repeats=repeats,
    )
    if "speedup_sharded" in partition:
        verdict = f"({partition['speedup_sharded']:.2f}x)"
    else:
        verdict = f"(fallback: {partition['fallback_reason']})"
    print(
        f"partitioned propagate over {partition['pos_rows']:,} pos rows, "
        f"{partition['change_size']:,} changes, {partition['shards']} shards "
        f"x{partition['shard_workers']} workers: "
        f"serial {partition['serial_propagate_s']:.3f}s, "
        f"sharded {partition['sharded_propagate_s']:.3f}s {verdict}; "
        f"shard accesses {partition['shard_access_units_total']:,} "
        f"vs serial {partition['serial_access_units']:,}"
    )

    columnar = run_columnar(
        pos_rows=max(rows // 4, 2_000),
        change_size=max(rows // 40, 500),
        repeats=repeats,
    )
    print(
        f"columnar propagate over {columnar['pos_rows']:,} pos rows, "
        f"{columnar['change_size']:,} changes: "
        f"row {columnar['row_propagate_s']:.3f}s, "
        f"columnar {columnar['columnar_propagate_s']:.3f}s "
        f"({columnar['speedup_columnar']:.2f}x; refresh accesses "
        f"{columnar['row_refresh_access_units']:,} -> "
        f"{columnar['columnar_refresh_access_units']:,})"
    )

    refresh_index = run_refresh_index(
        pos_scales=(2_000, 8_000) if args.quick else (4_000, 16_000),
        change_size=200 if args.quick else 400,
    )
    low, high = refresh_index["scales"][0], refresh_index["scales"][-1]
    print(
        f"refresh locator over {low['pos_rows']:,}->{high['pos_rows']:,} pos "
        f"rows ({refresh_index['change_size']:,} changes): summary rows "
        f"x{refresh_index['summary_rows_growth']}, indexed accesses "
        f"x{refresh_index['indexed_access_growth']}, scan accesses "
        f"x{refresh_index['scan_access_growth']}"
    )

    overhead = run_trace_overhead(rows=rows, repeats=repeats)
    print(
        f"tracing overhead on compiled group_by ({overhead['rows']:,} rows): "
        f"untraced {overhead['untraced_s']:.3f}s, "
        f"traced {overhead['traced_s']:.3f}s "
        f"({overhead['overhead_pct']:+.2f}%)"
    )

    path = write_bench_json("micro", micro, args.output)
    write_bench_json("lattice", lattice, args.output)
    write_bench_json("shared_scan", shared, args.output)
    write_bench_json("partition", partition, args.output)
    write_bench_json("columnar", columnar, args.output)
    write_bench_json("refresh_index", refresh_index, args.output)
    write_bench_json("trace_overhead", overhead, args.output)
    print(f"results merged into {path}")

    if (
        args.trace_threshold is not None
        and overhead["overhead_pct"] > args.trace_threshold
    ):
        print(
            f"FAIL: tracing overhead {overhead['overhead_pct']:.2f}% exceeds "
            f"the {args.trace_threshold:.2f}% threshold"
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
