"""Benchmark harness reproducing the paper's Figure 9 and the ablations."""

from .figure9 import (
    Figure9Panel,
    Figure9Point,
    bench_scale,
    measure_point,
    run_change_size_panel,
    run_panel,
    run_pos_size_panel,
    scaled,
)
from .reporting import (
    ShapeClaim,
    check_lattice_benefit_grows_with_change_size,
    check_lattice_helps_propagate,
    check_maintenance_beats_rematerialization,
    check_propagate_flat_in_pos_size,
    check_refresh_cheaper_for_insertions,
    format_claims,
    format_panel,
)

__all__ = [
    "Figure9Panel",
    "Figure9Point",
    "ShapeClaim",
    "bench_scale",
    "check_lattice_benefit_grows_with_change_size",
    "check_lattice_helps_propagate",
    "check_maintenance_beats_rematerialization",
    "check_propagate_flat_in_pos_size",
    "check_refresh_cheaper_for_insertions",
    "format_claims",
    "format_panel",
    "measure_point",
    "run_change_size_panel",
    "run_panel",
    "run_pos_size_panel",
    "scaled",
]
