"""Benchmark harness reproducing the paper's Figure 9 and the ablations."""

from .figure9 import (
    Figure9Panel,
    Figure9Point,
    bench_scale,
    measure_point,
    run_change_size_panel,
    run_panel,
    run_pos_size_panel,
    scaled,
)
from .propagate_bench import run_lattice as run_propagate_lattice_bench
from .propagate_bench import run_micro as run_propagate_micro_bench
from .reporting import (
    ShapeClaim,
    bench_json_path,
    check_lattice_benefit_grows_with_change_size,
    check_lattice_helps_propagate,
    check_maintenance_beats_rematerialization,
    check_propagate_flat_in_pos_size,
    check_refresh_cheaper_for_insertions,
    format_claims,
    format_panel,
    panel_payload,
    write_bench_json,
)

__all__ = [
    "Figure9Panel",
    "Figure9Point",
    "ShapeClaim",
    "bench_json_path",
    "bench_scale",
    "check_lattice_benefit_grows_with_change_size",
    "check_lattice_helps_propagate",
    "check_maintenance_beats_rematerialization",
    "check_propagate_flat_in_pos_size",
    "check_refresh_cheaper_for_insertions",
    "format_claims",
    "format_panel",
    "measure_point",
    "panel_payload",
    "run_change_size_panel",
    "run_panel",
    "run_pos_size_panel",
    "run_propagate_lattice_bench",
    "run_propagate_micro_bench",
    "scaled",
    "write_bench_json",
]
