"""Formatting and shape-checking of Figure 9 results.

The reproduction targets the paper's qualitative claims (who wins, by
roughly what factor, which curves are flat), not its absolute seconds —
our substrate is a Python engine, not Centura SQL on a 1997 Pentium.
:func:`shape_report` evaluates each claim and marks it reproduced or not,
and the formatted tables print the same series the paper plots.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from statistics import mean

from .figure9 import Figure9Panel

#: Machine-readable benchmark results, committed at the repo root to seed
#: the performance trajectory across PRs.
BENCH_JSON_NAME = "BENCH_propagate.json"


def bench_json_path() -> pathlib.Path:
    """Default location of the benchmark JSON: the repository root."""
    return pathlib.Path(__file__).resolve().parents[3] / BENCH_JSON_NAME


def atomic_write_text(path: pathlib.Path | str, text: str) -> pathlib.Path:
    """Write *text* to *path* atomically (tempfile + ``os.replace``).

    A reader — or a crashed writer — can then never observe a truncated or
    half-written file: the content appears in one rename.  The temporary
    file lives in the target's directory so the replace stays on one
    filesystem.
    """
    target = pathlib.Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent or pathlib.Path("."),
        prefix=target.name + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def write_bench_json(
    section: str, payload, path: pathlib.Path | str | None = None
) -> pathlib.Path:
    """Merge *payload* under *section* in the benchmark JSON file.

    The file accumulates sections from independent runs (the propagate
    micro-benchmark, the Figure 9 panels), so existing sections are kept;
    dict payloads are merged key-by-key into an existing dict section so a
    single panel re-run does not discard its siblings.  The merged file is
    replaced atomically: an interrupted run leaves the previous contents
    intact rather than a truncated JSON document.
    """
    target = pathlib.Path(path) if path is not None else bench_json_path()
    data: dict = {}
    if target.exists():
        try:
            data = json.loads(target.read_text())
        except ValueError:
            data = {}
    if not isinstance(data, dict):
        data = {}
    data.setdefault("schema_version", 1)
    existing = data.get(section)
    if isinstance(existing, dict) and isinstance(payload, dict):
        existing.update(payload)
    else:
        data[section] = payload
    return atomic_write_text(
        target, json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


def panel_payload(panel: Figure9Panel) -> dict:
    """A Figure 9 panel as plain JSON-serialisable data."""
    return {
        "name": panel.name,
        "x_label": panel.x_label,
        "workload": panel.workload,
        "points": [
            {
                "pos_rows": point.pos_rows,
                "change_size": point.change_size,
                "propagate_lattice_s": point.propagate_lattice_s,
                "refresh_s": point.refresh_s,
                "maintenance_s": point.maintenance_s,
                "rematerialize_s": point.rematerialize_s,
                "propagate_direct_s": point.propagate_direct_s,
                "recompute_groups": point.recompute_groups,
                "deleted_groups": point.deleted_groups,
            }
            for point in panel.points
        ],
    }


def format_panel(panel: Figure9Panel) -> str:
    """An ASCII table with the paper's four series for one panel."""
    header = (
        f"{panel.x_label:>12} | {'Propagate':>10} | {'SD Maint.':>10} | "
        f"{'Remater.':>10} | {'Prop(w/o)':>10} | {'recomputes':>10} | "
        f"{'deletes':>8}"
    )
    rule = "-" * len(header)
    lines = [
        f"{panel.name} — {panel.workload} changes "
        f"(seconds; series as in the paper)",
        header,
        rule,
    ]
    for point, x in zip(panel.points, panel.x_values()):
        lines.append(
            f"{x:>12,} | {point.propagate_lattice_s:>10.3f} | "
            f"{point.maintenance_s:>10.3f} | {point.rematerialize_s:>10.3f} | "
            f"{point.propagate_direct_s:>10.3f} | {point.recompute_groups:>10,} | "
            f"{point.deleted_groups:>8,}"
        )
    return "\n".join(lines)


@dataclass
class ShapeClaim:
    """One qualitative claim from the paper's Section 6 prose."""

    description: str
    holds: bool
    evidence: str


def _speedup(slow: float, fast: float) -> float:
    return slow / fast if fast > 0 else float("inf")


def check_maintenance_beats_rematerialization(panel: Figure9Panel) -> ShapeClaim:
    """Incremental maintenance wins at every measured point."""
    wins = [p.maintenance_s < p.rematerialize_s for p in panel.points]
    factors = [_speedup(p.rematerialize_s, p.maintenance_s) for p in panel.points]
    return ShapeClaim(
        description="summary-delta maintenance beats rematerialization",
        holds=all(wins),
        evidence=(
            f"speedup {min(factors):.1f}×–{max(factors):.1f}× across "
            f"{len(panel.points)} points"
        ),
    )


def check_lattice_helps_propagate(panel: Figure9Panel) -> ShapeClaim:
    """Lattice propagate is cheaper than per-view propagate, on average."""
    ratios = [
        _speedup(p.propagate_direct_s, p.propagate_lattice_s)
        for p in panel.points
    ]
    return ShapeClaim(
        description="propagate benefits from exploiting the lattice",
        holds=mean(ratios) > 1.0,
        evidence=f"mean speedup {mean(ratios):.2f}× (per-point {min(ratios):.2f}–{max(ratios):.2f}×)",
    )


def check_lattice_benefit_grows_with_change_size(panel: Figure9Panel) -> ShapeClaim:
    """Panels (a)/(c): the direct-vs-lattice gap widens as changes grow."""
    gaps = [
        p.propagate_direct_s - p.propagate_lattice_s for p in panel.points
    ]
    half = len(gaps) // 2
    early, late = mean(gaps[:half]), mean(gaps[half:])
    return ShapeClaim(
        description="lattice benefit to propagate grows with change-set size",
        holds=late > early,
        evidence=f"mean gap {early * 1000:.1f}ms (small sets) → {late * 1000:.1f}ms (large sets)",
    )


def check_propagate_flat_in_pos_size(panel: Figure9Panel) -> ShapeClaim:
    """Panels (b)/(d): propagate does not depend on the pos table size."""
    values = [p.propagate_lattice_s for p in panel.points]
    spread = (max(values) - min(values)) / mean(values) if mean(values) else 0.0
    return ShapeClaim(
        description="propagate time is flat as pos size grows",
        holds=spread < 0.75,
        evidence=f"relative spread {spread:.0%} over pos sizes "
                 f"{panel.points[0].pos_rows:,}–{panel.points[-1].pos_rows:,}",
    )


def check_deletions_drop_with_pos_size(panel: Figure9Panel) -> ShapeClaim:
    """Panels (b): the *mechanism* behind the paper's falling refresh curve.

    "When the pos table is small, refresh causes a significant number of
    deletions ... When the pos table is large, refresh causes only updates"
    (§6).  Our refresh timing is dominated by MIN/MAX recomputation scans
    (see EXPERIMENTS.md), so we verify the underlying effect directly: the
    count of view-tuple deletions falls as pos grows, because larger pos
    tables give each group more tuples and deletions stop emptying groups.
    """
    first, last = panel.points[0], panel.points[-1]
    return ShapeClaim(
        description="view-tuple deletions decrease as pos grows",
        holds=last.deleted_groups < first.deleted_groups,
        evidence=(
            f"{first.deleted_groups:,} deletions at pos={first.pos_rows:,} → "
            f"{last.deleted_groups:,} at pos={last.pos_rows:,}"
        ),
    )


def check_refresh_cheaper_for_insertions(
    update_panel: Figure9Panel, insertion_panel: Figure9Panel
) -> ShapeClaim:
    """Panels (a) vs (c): insertion-generating refresh is cheaper."""
    update_refresh = mean(p.refresh_s for p in update_panel.points)
    insert_refresh = mean(p.refresh_s for p in insertion_panel.points)
    return ShapeClaim(
        description="refresh is cheaper for insertion-generating changes",
        holds=insert_refresh < update_refresh,
        evidence=(
            f"mean refresh {insert_refresh:.3f}s (insertions) vs "
            f"{update_refresh:.3f}s (updates)"
        ),
    )


def format_claims(claims: list[ShapeClaim]) -> str:
    lines = ["Shape claims (paper §6 prose):"]
    for claim in claims:
        status = "REPRODUCED" if claim.holds else "NOT REPRODUCED"
        lines.append(f"  [{status}] {claim.description} — {claim.evidence}")
    return "\n".join(lines)
