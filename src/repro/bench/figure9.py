"""The Figure 9 experiment harness.

The paper's performance study (Section 6) plots total elapsed time for four
strategies over the four retail summary tables:

* **Propagate** (solid lower line) — summary-delta computation exploiting
  the D-lattice;
* **Summary Delta Maint.** (solid upper line) — propagate + refresh;
* **Rematerialize** — recompute all four views through the V-lattice;
* **Propagate (w/o lattice)** (dotted) — each summary delta computed
  directly from the change set.

Four panels:

=====  ======================  =========================  =================
panel  x-axis                  fixed                       change workload
=====  ======================  =========================  =================
(a)    change size 1k–10k      pos = 500,000               update-generating
(b)    pos size 100k–500k      changes = 10,000            update-generating
(c)    change size 1k–10k      pos = 500,000               insertion-generating
(d)    pos size 100k–500k      changes = 10,000            insertion-generating
=====  ======================  =========================  =================

Scaling: set the environment variable ``REPRO_BENCH_SCALE`` (e.g. ``0.1``)
to shrink both the pos sizes and the change sizes proportionally — useful
for smoke runs.  The default is paper scale.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.propagate import PropagateOptions
from ..core.refresh import RefreshVariant
from ..lattice.plan import (
    build_lattice_for_views,
    propagate_lattice,
    propagate_without_lattice,
    refresh_lattice,
    rematerialize_with_lattice,
)
from ..warehouse.changes import ChangeSet
from ..workload.changes import (
    insertion_generating_changes,
    update_generating_changes,
)
from ..workload.generator import RetailConfig, RetailData, generate_retail
from ..workload.retail import build_retail_warehouse

#: Paper-scale parameters.
PAPER_POS_SIZES = (100_000, 200_000, 300_000, 400_000, 500_000)
PAPER_CHANGE_SIZES = tuple(range(1_000, 10_001, 1_000))
PAPER_FIXED_POS = 500_000
PAPER_FIXED_CHANGES = 10_000


def bench_scale() -> float:
    """The global size multiplier from ``REPRO_BENCH_SCALE`` (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 10) -> int:
    """Scale a paper-size parameter, keeping it even and bounded below."""
    result = max(minimum, int(value * bench_scale()))
    return result - (result % 2)


@dataclass
class Figure9Point:
    """One x-axis point of one panel: the four measured series, in seconds."""

    pos_rows: int
    change_size: int
    propagate_lattice_s: float
    refresh_s: float
    rematerialize_s: float
    propagate_direct_s: float
    recompute_groups: int
    #: View tuples deleted across all four views — the mechanism behind the
    #: paper's falling refresh curve in panel (b).
    deleted_groups: int = 0

    @property
    def maintenance_s(self) -> float:
        """The paper's "Summary Delta Maint." series."""
        return self.propagate_lattice_s + self.refresh_s


@dataclass
class Figure9Panel:
    """A complete panel: its points plus identifying metadata."""

    name: str
    x_label: str
    workload: str
    points: list[Figure9Point] = field(default_factory=list)

    def x_values(self) -> list[int]:
        if self.x_label == "change size":
            return [point.change_size for point in self.points]
        return [point.pos_rows for point in self.points]


ChangeFactory = Callable[[RetailData, int], ChangeSet]


def _update_changes(data: RetailData, size: int) -> ChangeSet:
    return update_generating_changes(data.pos, data.config, size, data.rng)


def _insertion_changes(data: RetailData, size: int) -> ChangeSet:
    return insertion_generating_changes(data.pos, data.config, size, data.rng)


CHANGE_FACTORIES: dict[str, ChangeFactory] = {
    "update-generating": _update_changes,
    "insertion-generating": _insertion_changes,
}


def _timed(thunk: Callable[[], object]) -> tuple[float, object]:
    started = time.perf_counter()
    result = thunk()
    return time.perf_counter() - started, result


def measure_point(
    data: RetailData,
    views,
    changes: ChangeSet,
    options: PropagateOptions = PropagateOptions(),
    variant: RefreshVariant = RefreshVariant.CURSOR,
) -> Figure9Point:
    """Measure all four series for one change set.

    Side effects: the change set is applied to the base table and the views
    end up refreshed (and then rematerialised — same content), so the
    warehouse remains consistent for the next point of a sweep.
    """
    pos_rows_before = len(data.pos.table)

    direct_s, _ = _timed(
        lambda: propagate_without_lattice(
            [view.definition for view in views], changes, options
        )
    )

    lattice = build_lattice_for_views(views)
    lattice_s, deltas = _timed(
        lambda: propagate_lattice(lattice, changes, options)
    )

    changes.apply_to(data.pos.table)

    views_by_name = {view.name: view for view in views}
    refresh_s, stats = _timed(
        lambda: refresh_lattice(views_by_name, deltas, variant)
    )

    rematerialize_s, _ = _timed(
        lambda: rematerialize_with_lattice(views, lattice)
    )

    return Figure9Point(
        pos_rows=pos_rows_before,
        change_size=changes.size(),
        propagate_lattice_s=lattice_s,
        refresh_s=refresh_s,
        rematerialize_s=rematerialize_s,
        propagate_direct_s=direct_s,
        recompute_groups=sum(s.recomputed for s in stats.values()),
        deleted_groups=sum(s.deleted for s in stats.values()),
    )


def run_change_size_panel(name: str, workload: str) -> Figure9Panel:
    """Panels (a) and (c): sweep the change-set size at fixed pos size."""
    factory = CHANGE_FACTORIES[workload]
    data = generate_retail(
        RetailConfig(pos_rows=scaled(PAPER_FIXED_POS, minimum=1_000))
    )
    warehouse = build_retail_warehouse(data)
    views = warehouse.views_over("pos")
    panel = Figure9Panel(name=name, x_label="change size", workload=workload)
    for change_size in PAPER_CHANGE_SIZES:
        size = scaled(change_size)
        changes = factory(data, size)
        panel.points.append(measure_point(data, views, changes))
    return panel


def run_pos_size_panel(name: str, workload: str) -> Figure9Panel:
    """Panels (b) and (d): sweep the pos size at fixed change-set size."""
    factory = CHANGE_FACTORIES[workload]
    panel = Figure9Panel(name=name, x_label="pos size", workload=workload)
    for pos_rows in PAPER_POS_SIZES:
        data = generate_retail(
            RetailConfig(pos_rows=scaled(pos_rows, minimum=1_000))
        )
        warehouse = build_retail_warehouse(data)
        views = warehouse.views_over("pos")
        changes = factory(data, scaled(PAPER_FIXED_CHANGES))
        panel.points.append(measure_point(data, views, changes))
    return panel


def run_panel(panel_id: str) -> Figure9Panel:
    """Run one of the paper's panels by letter: 'a', 'b', 'c', or 'd'."""
    runners = {
        "a": lambda: run_change_size_panel("Figure 9(a)", "update-generating"),
        "b": lambda: run_pos_size_panel("Figure 9(b)", "update-generating"),
        "c": lambda: run_change_size_panel("Figure 9(c)", "insertion-generating"),
        "d": lambda: run_pos_size_panel("Figure 9(d)", "insertion-generating"),
    }
    return runners[panel_id]()
