"""Serving benchmark: query throughput with maintenance running vs quiesced.

The paper's batch-window model stops all queries while summary tables
refresh; epoch-versioned views let the :mod:`repro.serve` query server keep
answering during propagate/refresh.  This harness quantifies that: a pool
of reader threads hammers a mixed query workload against the Figure 1
retail warehouse, first with the warehouse quiesced, then with a background
maintenance loop continuously running full versioned maintenance cycles
(propagate → copy-on-refresh → certificate-validated publish).

Recorded into the ``serving`` section of ``BENCH_propagate.json``:
queries-per-second in both regimes, how many maintenance cycles (and
epoch publishes) overlapped the measured window, and the result-cache hit
rate under invalidation pressure.

Run as::

    PYTHONPATH=src python -m repro.bench.serve_bench [--quick]
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Sequence

from ..aggregates import CountStar, Sum
from ..lattice.plan import maintain_lattice
from ..query.router import AggregateQuery
from ..relational.expressions import col
from ..serve import QueryServer
from ..workload import (
    RetailConfig,
    build_retail_warehouse,
    generate_retail,
    update_generating_changes,
)
from .reporting import write_bench_json

DEFAULT_POS_ROWS = 50_000
DEFAULT_CHANGE_SIZE = 2_000
DEFAULT_THREADS = 4
DEFAULT_QUERIES_PER_THREAD = 500


def serving_queries(pos) -> list[AggregateQuery]:
    """A mixed workload, every query answerable from a summary table."""
    return [
        AggregateQuery.create(
            pos, group_by=["region"],
            aggregates=[("units", Sum(col("qty")))],
        ),
        AggregateQuery.create(
            pos, group_by=["city", "region"],
            aggregates=[("sales", CountStar()), ("units", Sum(col("qty")))],
        ),
        AggregateQuery.create(
            pos, group_by=["storeID", "date"],
            aggregates=[("units", Sum(col("qty")))],
        ),
        AggregateQuery.create(
            pos, group_by=["category"],
            aggregates=[("sales", CountStar())],
        ),
        AggregateQuery.create(
            pos, group_by=[],
            aggregates=[("units", Sum(col("qty")))],
        ),
    ]


def _hammer(
    server: QueryServer,
    queries: Sequence[AggregateQuery],
    threads: int,
    per_thread: int,
) -> float:
    """Run the workload from *threads* reader threads; return seconds."""
    barrier = threading.Barrier(threads + 1)
    errors: list[BaseException] = []

    def reader(seed: int) -> None:
        barrier.wait()
        try:
            for i in range(per_thread):
                server.answer(queries[(seed + i) % len(queries)])
        except BaseException as failure:   # surfaced to the caller
            errors.append(failure)

    workers = [
        threading.Thread(target=reader, args=(seed,), daemon=True)
        for seed in range(threads)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    start = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def run_serving(
    pos_rows: int = DEFAULT_POS_ROWS,
    change_size: int = DEFAULT_CHANGE_SIZE,
    threads: int = DEFAULT_THREADS,
    queries_per_thread: int = DEFAULT_QUERIES_PER_THREAD,
) -> dict:
    data = generate_retail(RetailConfig(pos_rows=pos_rows))
    warehouse = build_retail_warehouse(data)
    views = warehouse.views_over("pos")
    queries = serving_queries(data.pos)
    total_queries = threads * queries_per_thread

    # Regime 1: quiesced — no maintenance while readers run.
    with QueryServer(warehouse, max_workers=threads) as server:
        for query in queries:   # warm the plan/cache path once
            server.answer(query)
        quiesced_s = _hammer(server, queries, threads, queries_per_thread)

    # Regime 2: a background maintenance loop runs full versioned cycles
    # (propagate -> shadow refresh -> certificate-validated publish) for
    # the whole measured window.
    stop = threading.Event()
    cycles = 0
    maintenance_errors: list[BaseException] = []

    def maintainer() -> None:
        nonlocal cycles
        try:
            while not stop.is_set():
                changes = update_generating_changes(
                    data.pos, data.config, change_size, data.rng
                )
                maintain_lattice(views, changes, mode="versioned")
                cycles += 1
        except BaseException as failure:
            maintenance_errors.append(failure)

    with QueryServer(warehouse, max_workers=threads) as server:
        for query in queries:
            server.answer(query)
        thread = threading.Thread(target=maintainer, daemon=True)
        thread.start()
        maintained_s = _hammer(server, queries, threads, queries_per_thread)
        stop.set()
        thread.join()
        hit_rate = server.stats.hit_rate
    if maintenance_errors:
        raise maintenance_errors[0]

    return {
        "pos_rows": pos_rows,
        "change_size": change_size,
        "threads": threads,
        "queries": total_queries,
        "mode": "versioned",
        "qps_quiesced": round(total_queries / quiesced_s, 1),
        "qps_under_maintenance": round(total_queries / maintained_s, 1),
        "throughput_ratio": round(quiesced_s / maintained_s, 3),
        "maintenance_cycles": cycles,
        "epochs_published": max(view.epoch for view in views),
        "cache_hit_rate": round(hit_rate, 3),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.serve_bench",
        description="query throughput under concurrent versioned maintenance",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test scale (5k rows, 2 threads, 50 queries each) for CI",
    )
    parser.add_argument("--pos-rows", type=int, default=None)
    parser.add_argument("--changes", type=int, default=None)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--queries-per-thread", type=int, default=None)
    parser.add_argument(
        "--output", default=None,
        help="JSON path (default: BENCH_propagate.json at the repo root)",
    )
    args = parser.parse_args(argv)

    pos_rows = args.pos_rows or (5_000 if args.quick else DEFAULT_POS_ROWS)
    change_size = args.changes or (500 if args.quick else DEFAULT_CHANGE_SIZE)
    threads = args.threads or (2 if args.quick else DEFAULT_THREADS)
    per_thread = args.queries_per_thread or (
        50 if args.quick else DEFAULT_QUERIES_PER_THREAD
    )

    serving = run_serving(pos_rows, change_size, threads, per_thread)
    print(f"serving benchmark ({pos_rows:,} pos rows, "
          f"{threads} reader threads x {per_thread} queries):")
    print(f"  quiesced:          {serving['qps_quiesced']:>10,.1f} qps")
    print(f"  under maintenance: {serving['qps_under_maintenance']:>10,.1f} qps "
          f"({serving['maintenance_cycles']} cycles, "
          f"{serving['epochs_published']} epochs published)")
    print(f"  cache hit rate:    {serving['cache_hit_rate']:>10.1%}")

    path = write_bench_json("serving", serving, args.output)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
