"""Serving benchmark: query throughput with maintenance running vs quiesced.

The paper's batch-window model stops all queries while summary tables
refresh; epoch-versioned views let the :mod:`repro.serve` query server keep
answering during propagate/refresh.  This harness quantifies that: a pool
of reader threads hammers a mixed query workload against the Figure 1
retail warehouse, first with the warehouse quiesced, then with a background
maintenance loop continuously running full versioned maintenance cycles
(propagate → copy-on-refresh → certificate-validated publish).

Recorded into the ``serving`` section of ``BENCH_propagate.json``:
queries-per-second and exact per-query latency percentiles (p50/p95/p99,
from the raw samples rather than histogram buckets) in both regimes, how
many maintenance cycles (and epoch publishes) overlapped the measured
window, the result-cache hit rate under invalidation pressure, and the
end-to-end *visibility lag* — per-batch ingest->queryable seconds from
the epoch manifests published during the window (p50/p95/p99).

``--expose-http PORT`` starts the embedded metrics exporter on the
under-maintenance server and ``--hold-exporter SECONDS`` keeps it
scrapeable after the measured window — together they let the CI
serving-telemetry smoke scrape ``/metrics`` and ``/status`` from a real
benchmark run.

Run as::

    PYTHONPATH=src python -m repro.bench.serve_bench [--quick]
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Sequence

from ..aggregates import CountStar, Sum
from ..lattice.plan import maintain_lattice
from ..query.router import AggregateQuery
from ..relational.expressions import col
from ..serve import QueryServer
from ..workload import (
    RetailConfig,
    build_retail_warehouse,
    generate_retail,
    update_generating_changes,
)
from .reporting import write_bench_json

DEFAULT_POS_ROWS = 50_000
DEFAULT_CHANGE_SIZE = 2_000
DEFAULT_THREADS = 4
DEFAULT_QUERIES_PER_THREAD = 500


def serving_queries(pos) -> list[AggregateQuery]:
    """A mixed workload, every query answerable from a summary table."""
    return [
        AggregateQuery.create(
            pos, group_by=["region"],
            aggregates=[("units", Sum(col("qty")))],
        ),
        AggregateQuery.create(
            pos, group_by=["city", "region"],
            aggregates=[("sales", CountStar()), ("units", Sum(col("qty")))],
        ),
        AggregateQuery.create(
            pos, group_by=["storeID", "date"],
            aggregates=[("units", Sum(col("qty")))],
        ),
        AggregateQuery.create(
            pos, group_by=["category"],
            aggregates=[("sales", CountStar())],
        ),
        AggregateQuery.create(
            pos, group_by=[],
            aggregates=[("units", Sum(col("qty")))],
        ),
    ]


def _hammer(
    server: QueryServer,
    queries: Sequence[AggregateQuery],
    threads: int,
    per_thread: int,
) -> tuple[float, list[float]]:
    """Run the workload from *threads* reader threads.

    Returns ``(wall seconds, per-query latencies in seconds)`` — the raw
    samples, so percentiles are exact rather than bucket estimates.
    """
    barrier = threading.Barrier(threads + 1)
    errors: list[BaseException] = []
    samples: list[list[float]] = [[] for _ in range(threads)]

    def reader(seed: int) -> None:
        barrier.wait()
        mine = samples[seed]
        try:
            for i in range(per_thread):
                t0 = time.perf_counter()
                server.answer(queries[(seed + i) % len(queries)])
                mine.append(time.perf_counter() - t0)
        except BaseException as failure:   # surfaced to the caller
            errors.append(failure)

    workers = [
        threading.Thread(target=reader, args=(seed,), daemon=True)
        for seed in range(threads)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    start = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, [latency for per in samples for latency in per]


def latency_percentiles_ms(samples: Sequence[float]) -> dict:
    """Exact nearest-rank p50/p95/p99 (+max) over raw latency samples,
    in milliseconds.  Nearest-rank keeps p50 <= p95 <= p99 by construction,
    which the CI artifact sanity check relies on."""
    if not samples:
        return {"p50": None, "p95": None, "p99": None, "max": None}
    ordered = sorted(samples)
    n = len(ordered)

    def rank(q: float) -> float:
        position = max(0, min(n - 1, int(q * n + 0.999999) - 1))
        return ordered[position]

    return {
        "p50": round(rank(0.50) * 1e3, 4),
        "p95": round(rank(0.95) * 1e3, 4),
        "p99": round(rank(0.99) * 1e3, 4),
        "max": round(ordered[-1] * 1e3, 4),
    }


def run_serving(
    pos_rows: int = DEFAULT_POS_ROWS,
    change_size: int = DEFAULT_CHANGE_SIZE,
    threads: int = DEFAULT_THREADS,
    queries_per_thread: int = DEFAULT_QUERIES_PER_THREAD,
    expose_http: int | None = None,
    hold_exporter_s: float = 0.0,
) -> dict:
    data = generate_retail(RetailConfig(pos_rows=pos_rows))
    warehouse = build_retail_warehouse(data)
    views = warehouse.views_over("pos")
    queries = serving_queries(data.pos)
    total_queries = threads * queries_per_thread

    # Regime 1: quiesced — no maintenance while readers run.
    with QueryServer(warehouse, max_workers=threads) as server:
        for query in queries:   # warm the plan/cache path once
            server.answer(query)
        quiesced_s, quiesced_lat = _hammer(
            server, queries, threads, queries_per_thread
        )

    # Regime 2: a background maintenance loop runs full versioned cycles
    # (propagate -> shadow refresh -> certificate-validated publish) for
    # the whole measured window.
    stop = threading.Event()
    cycles = 0
    maintenance_errors: list[BaseException] = []
    # Manifest high-water marks: every epoch the maintainer publishes past
    # these carries per-batch ingest->publish lags for the visibility
    # section below.
    manifest_marks = {view.name: len(view.lineage) for view in views}

    def maintainer() -> None:
        nonlocal cycles
        try:
            while not stop.is_set():
                changes = update_generating_changes(
                    data.pos, data.config, change_size, data.rng
                )
                maintain_lattice(views, changes, mode="versioned")
                cycles += 1
        except BaseException as failure:
            maintenance_errors.append(failure)

    with QueryServer(
        warehouse, max_workers=threads, expose_http=expose_http
    ) as server:
        if server.exporter is not None:
            print(f"metrics exporter listening at {server.exporter.url}")
        for query in queries:
            server.answer(query)
        thread = threading.Thread(target=maintainer, daemon=True)
        thread.start()
        maintained_s, maintained_lat = _hammer(
            server, queries, threads, queries_per_thread
        )
        stop.set()
        thread.join()
        hit_rate = server.stats.hit_rate
        if server.exporter is not None and hold_exporter_s > 0:
            # Keep /metrics and /status scrapeable for an outside smoke
            # test after the measured window ends.
            time.sleep(hold_exporter_s)
    if maintenance_errors:
        raise maintenance_errors[0]

    # End-to-end visibility lag under live maintenance: for every batch in
    # every epoch manifest published during the measured window, the
    # seconds from its ingest stamp to the epoch's publish.
    visibility_lags = [
        lag
        for view in views
        for manifest in view.lineage.manifests_since(manifest_marks[view.name])
        for lag in manifest.lags().values()
    ]

    return {
        "pos_rows": pos_rows,
        "change_size": change_size,
        "threads": threads,
        "queries": total_queries,
        "mode": "versioned",
        "qps_quiesced": round(total_queries / quiesced_s, 1),
        "qps_under_maintenance": round(total_queries / maintained_s, 1),
        "throughput_ratio": round(quiesced_s / maintained_s, 3),
        "latency_quiesced_ms": latency_percentiles_ms(quiesced_lat),
        "latency_under_maintenance_ms": latency_percentiles_ms(maintained_lat),
        "maintenance_cycles": cycles,
        "epochs_published": max(view.epoch for view in views),
        "cache_hit_rate": round(hit_rate, 3),
        "visibility_lag_ms": latency_percentiles_ms(visibility_lags),
        "visibility_lag_samples": len(visibility_lags),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.serve_bench",
        description="query throughput under concurrent versioned maintenance",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-test scale (5k rows, 2 threads, 50 queries each) for CI",
    )
    parser.add_argument("--pos-rows", type=int, default=None)
    parser.add_argument("--changes", type=int, default=None)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--queries-per-thread", type=int, default=None)
    parser.add_argument(
        "--output", default=None,
        help="JSON path (default: BENCH_propagate.json at the repo root)",
    )
    parser.add_argument(
        "--expose-http", type=int, default=None, metavar="PORT",
        help="serve /metrics, /status, /slow from the under-maintenance "
             "server on PORT (0 = ephemeral)",
    )
    parser.add_argument(
        "--hold-exporter", type=float, default=0.0, metavar="SECONDS",
        help="keep the exporter scrapeable this long after the measured "
             "window (for external smoke tests)",
    )
    args = parser.parse_args(argv)

    pos_rows = args.pos_rows or (5_000 if args.quick else DEFAULT_POS_ROWS)
    change_size = args.changes or (500 if args.quick else DEFAULT_CHANGE_SIZE)
    threads = args.threads or (2 if args.quick else DEFAULT_THREADS)
    per_thread = args.queries_per_thread or (
        50 if args.quick else DEFAULT_QUERIES_PER_THREAD
    )

    serving = run_serving(
        pos_rows, change_size, threads, per_thread,
        expose_http=args.expose_http, hold_exporter_s=args.hold_exporter,
    )
    quiesced_lat = serving["latency_quiesced_ms"]
    maintained_lat = serving["latency_under_maintenance_ms"]
    print(f"serving benchmark ({pos_rows:,} pos rows, "
          f"{threads} reader threads x {per_thread} queries):")
    print(f"  quiesced:          {serving['qps_quiesced']:>10,.1f} qps "
          f"(p50 {quiesced_lat['p50']:.2f}ms / p99 {quiesced_lat['p99']:.2f}ms)")
    print(f"  under maintenance: {serving['qps_under_maintenance']:>10,.1f} qps "
          f"(p50 {maintained_lat['p50']:.2f}ms / p99 {maintained_lat['p99']:.2f}ms; "
          f"{serving['maintenance_cycles']} cycles, "
          f"{serving['epochs_published']} epochs published)")
    print(f"  cache hit rate:    {serving['cache_hit_rate']:>10.1%}")
    visibility = serving["visibility_lag_ms"]
    if visibility["p50"] is not None:
        print(f"  visibility lag:    p50 {visibility['p50']:.2f}ms / "
              f"p95 {visibility['p95']:.2f}ms / p99 {visibility['p99']:.2f}ms "
              f"(ingest->queryable, {serving['visibility_lag_samples']:,} "
              f"batches)")

    path = write_bench_json("serving", serving, args.output)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
