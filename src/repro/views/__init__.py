"""Summary-view definitions, materialisation, and SQL rendering."""

from .definition import (
    AggregateOutput,
    DerivedOutput,
    SummaryViewDefinition,
)
from .materialize import (
    EpochStats,
    MaterializedView,
    ShadowVersion,
    ViewVersion,
    compute_rows,
)
from .sql import (
    render_prepare_changes_sql,
    render_prepare_sql,
    render_summary_delta_sql,
    render_view_sql,
)

__all__ = [
    "AggregateOutput",
    "DerivedOutput",
    "EpochStats",
    "MaterializedView",
    "ShadowVersion",
    "SummaryViewDefinition",
    "ViewVersion",
    "compute_rows",
    "render_prepare_changes_sql",
    "render_prepare_sql",
    "render_summary_delta_sql",
    "render_view_sql",
]
