"""SQL rendering of view, prepare, and summary-delta definitions.

The engine executes definitions directly, but every definition can also be
printed as the SQL the paper shows (Figures 1, 3, and 6), so a reader can
diff this reproduction against the paper text.  The renderer follows the
paper's conventions: summary-delta columns are prefixed ``sd_``,
prepare-insertions/deletions/changes views are prefixed ``pi_``/``pd_``/
``pc_``, and dimension joins appear as ``FROM fact, dim WHERE fact.fk =
dim.key``.
"""

from __future__ import annotations

from ..aggregates.standard import Count, CountStar, Max, Min, Sum
from .definition import SummaryViewDefinition


def _from_where(definition: SummaryViewDefinition, fact_name: str) -> tuple[str, str]:
    """Build the FROM and WHERE clauses for a view over *fact_name*."""
    tables = [fact_name]
    conditions: list[str] = []
    for dimension_name in definition.dimensions:
        fk = definition.fact.foreign_key_for(dimension_name)
        tables.append(dimension_name)
        conditions.append(
            f"{fact_name}.{fk.column} = {dimension_name}.{fk.dimension.key}"
        )
    if definition.where is not None:
        conditions.append(definition.where.render())
    from_clause = "FROM " + ", ".join(tables)
    where_clause = ("WHERE " + " AND ".join(conditions)) if conditions else ""
    return from_clause, where_clause


def render_view_sql(
    definition: SummaryViewDefinition, include_synthetic: bool = True
) -> str:
    """Render ``CREATE VIEW name(...) AS SELECT ...`` for a summary view."""
    outputs = [
        output for output in definition.aggregates
        if include_synthetic or not output.synthetic
    ]
    header_columns = list(definition.group_by) + [output.name for output in outputs]
    select_items = list(definition.group_by) + [output.render() for output in outputs]
    from_clause, where_clause = _from_where(definition, definition.fact.name)
    lines = [
        f"CREATE VIEW {definition.name}({', '.join(header_columns)}) AS",
        f"SELECT {', '.join(select_items)}",
        from_clause,
    ]
    if where_clause:
        lines.append(where_clause)
    if definition.group_by:
        lines.append(f"GROUP BY {', '.join(definition.group_by)}")
    return "\n".join(lines)


def _source_item(definition: SummaryViewDefinition, output, deletion: bool) -> str:
    """Render one aggregate-source column of a prepare view (Table 1)."""
    function = output.function
    source = (
        function.deletion_source() if deletion else function.insertion_source()
    )
    return f"{source.render()} AS _{output.name}"


def render_prepare_sql(definition: SummaryViewDefinition, deletion: bool) -> str:
    """Render the prepare-insertions (``pi_``) or prepare-deletions (``pd_``)
    view for a summary view, as in the paper's Figure 6."""
    prefix = "pd" if deletion else "pi"
    change_table = f"{definition.fact.name}_{'del' if deletion else 'ins'}"
    header = (
        list(definition.group_by)
        + [f"_{output.name}" for output in definition.aggregates]
    )
    select_items = list(definition.group_by) + [
        _source_item(definition, output, deletion)
        for output in definition.aggregates
    ]
    from_clause, where_clause = _from_where(definition, change_table)
    lines = [
        f"CREATE VIEW {prefix}_{definition.name}({', '.join(header)}) AS",
        f"SELECT {', '.join(select_items)}",
        from_clause,
    ]
    if where_clause:
        lines.append(where_clause)
    return "\n".join(lines)


def render_prepare_changes_sql(definition: SummaryViewDefinition) -> str:
    """Render the prepare-changes (``pc_``) view: the UNION ALL of the
    prepare-insertions and prepare-deletions views."""
    header = (
        list(definition.group_by)
        + [f"_{output.name}" for output in definition.aggregates]
    )
    return "\n".join(
        [
            f"CREATE VIEW pc_{definition.name}({', '.join(header)}) AS",
            "SELECT *",
            f"FROM (pi_{definition.name} UNION ALL pd_{definition.name})",
        ]
    )


def _delta_aggregate_item(output) -> str:
    """How the summary-delta query aggregates one prepare-changes source."""
    function = output.function
    source_column = f"_{output.name}"
    if isinstance(function, (CountStar, Count, Sum)):
        return f"SUM({source_column}) AS sd_{output.name}"
    if isinstance(function, Min):
        return f"MIN({source_column}) AS sd_{output.name}"
    if isinstance(function, Max):
        return f"MAX({source_column}) AS sd_{output.name}"
    raise AssertionError(f"unsupported aggregate in delta rendering: {function!r}")


def render_summary_delta_sql(definition: SummaryViewDefinition) -> str:
    """Render the summary-delta view over prepare-changes (Section 4.1.2)."""
    header = list(definition.group_by) + [
        f"sd_{output.name}" for output in definition.aggregates
    ]
    select_items = list(definition.group_by) + [
        _delta_aggregate_item(output) for output in definition.aggregates
    ]
    lines = [
        f"CREATE VIEW sd_{definition.name}({', '.join(header)}) AS",
        f"SELECT {', '.join(select_items)}",
        f"FROM pc_{definition.name}",
    ]
    if definition.group_by:
        lines.append(f"GROUP BY {', '.join(definition.group_by)}")
    return "\n".join(lines)
