"""Materialisation of summary views and the stored-view wrapper.

:func:`materialize` computes a summary view from scratch: join the fact
table with the view's dimension tables, apply the selection, and
hash-aggregate on the group-by attributes.  This is both the initial load
path and the *rematerialisation* baseline the paper benchmarks against.

:class:`MaterializedView` couples the resolved definition with its stored
table (indexed on the group-by columns, as in the paper's experimental
setup) and provides user-facing reads that hide synthetic columns and
evaluate derived (``AVG``) outputs.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any

from ..errors import DefinitionError, PublishError
from ..obs import metrics as obs_metrics
from ..obs.audit import (
    ViewCertificate,
    ViewFreshness,
    certificates_enabled,
    rows_certificate,
)
from ..obs.lineage import ViewLineage
from ..relational.aggregation import group_by as physical_group_by
from ..relational.expressions import col
from ..relational.operators import select
from ..relational.schema import Schema
from ..relational.table import Table
from .definition import SummaryViewDefinition


def compute_rows(definition: SummaryViewDefinition, name: str | None = None) -> Table:
    """Compute the view's content from base data (no wrapper, no index)."""
    if not definition.is_resolved():
        raise DefinitionError(
            f"view {definition.name!r} must be resolved before materialisation"
        )
    source = definition.fact.join_dimensions(
        definition.fact.table, definition.dimensions
    )
    if definition.where is not None:
        source = select(source, definition.where)
    aggregates = [
        (output.name,
         output.function.argument if output.function.argument is not None else col(
             source.schema.columns[0]),
         output.function.base_reducer())
        for output in definition.aggregates
    ]
    return physical_group_by(
        source, definition.group_by, aggregates, name=name or definition.name
    )


@dataclass(frozen=True)
class EpochStats:
    """One view's epoch lifecycle, as of one collection pass.

    ``retained`` counts *superseded* epochs some reader still keeps alive
    (the current epoch is always alive by construction and is not
    counted); ``collected`` is the cumulative number of superseded epochs
    whose storage has been freed; ``watermark`` is the oldest epoch still
    reachable — the current epoch when no old reader survives, which is
    the healthy steady state.
    """

    current: int
    retained: int
    collected: int
    watermark: int

    def as_dict(self) -> dict[str, int]:
        return {
            "current": self.current,
            "retained": self.retained,
            "collected": self.collected,
            "watermark": self.watermark,
        }


@dataclass(frozen=True)
class ViewVersion:
    """One immutable-once-published epoch of a view's stored table.

    Readers that hold a :class:`ViewVersion` keep its table (and
    certificate) alive for as long as they reference it, so a query can
    keep reading a consistent snapshot while maintenance publishes newer
    epochs — the interpreter's garbage collector is the version store.
    """

    epoch: int
    table: Table
    certificate: ViewCertificate | None

    def stamp(self) -> int:
        """Monotonic identity for cache keys: the epoch number."""
        return self.epoch


class ShadowVersion:
    """A next-epoch build in progress: a private copy of the view's table.

    Duck-types the slice of :class:`MaterializedView` that the refresh
    machinery touches (``definition`` / ``table`` / ``group_key_index``),
    so :func:`repro.core.refresh.refresh` internals can maintain the
    shadow exactly as they would the live view.  Nothing the shadow does
    is visible to readers until :meth:`MaterializedView.publish`.
    """

    def __init__(
        self,
        definition: SummaryViewDefinition,
        table: Table,
        certificate: ViewCertificate | None,
        base_epoch: int,
    ):
        self.definition = definition
        self.table = table
        self.certificate = certificate
        #: Epoch of the published version this shadow was copied from.
        self.base_epoch = base_epoch
        #: Epoch this shadow will become once published.
        self.epoch = base_epoch + 1

    def __repr__(self) -> str:
        return (
            f"ShadowVersion({self.definition.name!r}, "
            f"epoch {self.base_epoch} -> {self.epoch})"
        )

    def group_key_index(self):
        if not self.definition.group_by:
            return None
        return self.table.index_on(list(self.definition.group_by))


class MaterializedView:
    """A stored summary table: resolved definition + indexed rows.

    The stored table lives inside an epoch-numbered :class:`ViewVersion`;
    ``view.table`` always resolves to the *current* version's table, and
    in-place maintenance keeps mutating it exactly as before.  The
    versioned path (:func:`repro.core.transactional.refresh_versioned`)
    instead builds a :class:`ShadowVersion` off to the side and installs
    it with :meth:`publish` — a single reference swap, atomic under the
    interpreter lock, so concurrent readers either see the whole old
    epoch or the whole new one and never a mix.
    """

    def __init__(self, definition: SummaryViewDefinition, table: Table):
        if table.schema != definition.storage_schema():
            raise DefinitionError(
                f"stored table for {definition.name!r} has schema "
                f"{list(table.schema.columns)}, expected "
                f"{list(definition.storage_schema().columns)}"
            )
        self.definition = definition
        if definition.group_by:
            table.create_index(list(definition.group_by))
        #: Incremental consistency certificate, kept in sync with the
        #: stored rows via the table's mutation observers (``None`` when
        #: disabled through ``REPRO_CERTIFICATES=0``).  Built from
        #: ``table.rows()`` — not ``scan()`` — because certificate
        #: bookkeeping must not charge tuple-access accounting.
        certificate: ViewCertificate | None = None
        if certificates_enabled():
            certificate = ViewCertificate.from_rows(table.rows())
            table.attach_observer(certificate)
        self._version = ViewVersion(0, table, certificate)
        #: Serialises publishers; readers never take it.
        self._publish_lock = threading.Lock()
        #: Per-view freshness (last refresh time / run id / kind).
        self.freshness = ViewFreshness()
        #: Per-view change-set lineage: the epoch manifests recorded by
        #: committed refreshes (which batches became visible, with their
        #: ingest→publish lags).  See :mod:`repro.obs.lineage`.
        self.lineage = ViewLineage()
        #: Epoch retention tracking: weak references to the *tables* of
        #: superseded epochs (the table is what a pinned plan actually
        #: holds onto, so its liveness is the retention signal), plus the
        #: cumulative count of epochs already freed.  Guarded by its own
        #: lock — collection must not contend with publishers.
        self._superseded: dict[int, weakref.ref] = {}
        self._collected_epochs = 0
        self._epoch_lock = threading.Lock()

    def __repr__(self) -> str:
        return f"MaterializedView({self.definition.name!r}, {len(self.table)} rows)"

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def table(self) -> Table:
        """The current epoch's stored table (in-place paths mutate it)."""
        return self._version.table

    @property
    def certificate(self) -> ViewCertificate | None:
        """The current epoch's consistency certificate."""
        return self._version.certificate

    @property
    def epoch(self) -> int:
        """Number of published swaps; 0 for a freshly materialised view."""
        return self._version.epoch

    def pin(self) -> ViewVersion:
        """Capture the current version for the duration of a read.

        A single attribute load — atomic under the interpreter lock — so
        the caller gets a consistent ``(epoch, table, certificate)``
        triple no matter how many publishes race with it.
        """
        return self._version

    def version_stamp(self) -> tuple[int, int]:
        """Cache-invalidation stamp: (epoch, refresh count).

        Changes whenever either a versioned swap publishes a new epoch or
        an in-place refresh mutates the current one, so result caches
        keyed on it can never serve stale answers.
        """
        return (self._version.epoch, self.freshness.refresh_count)

    def begin_version(self) -> ShadowVersion:
        """Copy the current version into a private next-epoch shadow.

        The copy carries the rows and index definitions but not the
        observers; the shadow gets its own certificate, seeded O(1) from
        the current one's digest-sum and maintained incrementally while
        the refresh mutates the shadow table.
        """
        current = self._version
        table = current.table.copy()
        certificate: ViewCertificate | None = None
        if current.certificate is not None:
            certificate = ViewCertificate(current.certificate.value)
            table.attach_observer(certificate)
        return ShadowVersion(self.definition, table, certificate, current.epoch)

    def publish(self, shadow: ShadowVersion, validate: bool = True) -> ViewVersion:
        """Atomically install *shadow* as the new current version.

        Refuses to publish a shadow built from a superseded epoch (a
        racing maintainer won) and, when *validate* is set and
        certificates are enabled, a shadow whose incrementally-maintained
        certificate disagrees with a fresh digest of its rows (a torn
        build).  On success the swap is a single reference assignment;
        committed epochs are never unpublished.
        """
        with self._publish_lock:
            current = self._version
            if shadow.base_epoch != current.epoch:
                raise PublishError(
                    f"stale shadow for {self.name!r}: built from epoch "
                    f"{shadow.base_epoch}, current is {current.epoch}"
                )
            if validate and shadow.certificate is not None:
                expected = rows_certificate(shadow.table.rows())
                if shadow.certificate.value != expected:
                    raise PublishError(
                        f"certificate mismatch publishing epoch "
                        f"{shadow.epoch} of {self.name!r}: maintained "
                        f"{shadow.certificate.hex}, recomputed "
                        f"{ViewCertificate(expected).hex}"
                    )
            version = ViewVersion(shadow.epoch, shadow.table, shadow.certificate)
            self._version = version
            with self._epoch_lock:
                self._superseded[current.epoch] = weakref.ref(current.table)
        # Outside the publish lock: prune epochs no reader kept alive and
        # refresh the retention gauges (serving telemetry records
        # unconditionally — see repro.obs.serving).
        self.collect_epochs()
        return version

    def collect_epochs(self, metrics=None) -> EpochStats:
        """Drop tracking for superseded epochs no reader keeps alive and
        publish the retention gauges; returns the resulting stats.

        The interpreter's garbage collector is the version store, so
        "collecting" an epoch means noticing its table became
        unreachable: the weak reference registered at publish time has
        died.  Runs after every publish and on every ``/metrics`` scrape;
        cost is O(retained epochs), which the collection itself keeps
        bounded.
        """
        with self._epoch_lock:
            dead = [
                epoch for epoch, ref in self._superseded.items()
                if ref() is None
            ]
            for epoch in dead:
                del self._superseded[epoch]
            self._collected_epochs += len(dead)
            stats = EpochStats(
                current=self._version.epoch,
                retained=len(self._superseded),
                collected=self._collected_epochs,
                watermark=min(
                    self._superseded, default=self._version.epoch
                ),
            )
        registry = metrics if metrics is not None else obs_metrics.registry()
        labels = {"view": self.name}
        registry.gauge("epochs.published", labels=labels).set(stats.current)
        registry.gauge("epochs.retained", labels=labels).set(stats.retained)
        registry.gauge("epochs.collected", labels=labels).set(stats.collected)
        registry.gauge("epochs.watermark", labels=labels).set(stats.watermark)
        return stats

    def epoch_stats(self) -> EpochStats:
        """The epoch lifecycle counts without touching the gauges (and
        without collecting — a pure read of the current tracking state)."""
        with self._epoch_lock:
            alive = [
                epoch for epoch, ref in self._superseded.items()
                if ref() is not None
            ]
            return EpochStats(
                current=self._version.epoch,
                retained=len(alive),
                collected=self._collected_epochs,
                watermark=min(alive, default=self._version.epoch),
            )

    def group_key_index(self):
        """The index on the group-by columns (``None`` for global views)."""
        if not self.definition.group_by:
            return None
        return self.table.index_on(list(self.definition.group_by))

    def read(self) -> Table:
        """User-facing content: synthetic columns hidden, derived outputs
        (AVG) evaluated with SQL division semantics."""
        definition = self.definition
        user_columns = definition.user_columns()
        schema = Schema(user_columns)
        positions = {
            column: definition.storage_schema().position(column)
            for column in definition.storage_schema().columns
        }
        derived_by_name = {d.name: d for d in definition.derived}
        result = Table(f"{definition.name}_read", schema)
        for row in self.table.scan():
            values: list[Any] = []
            for column in user_columns:
                if column in derived_by_name:
                    spec = derived_by_name[column]
                    numerator = row[positions[spec.numerator]]
                    denominator = row[positions[spec.denominator]]
                    if numerator is None or not denominator:
                        values.append(None)
                    else:
                        values.append(numerator / denominator)
                else:
                    values.append(row[positions[column]])
            result.insert(tuple(values))
        return result

    @staticmethod
    def build(definition: SummaryViewDefinition) -> "MaterializedView":
        """Resolve *definition*, compute it from base data, and wrap it."""
        resolved = definition if definition.is_resolved() else definition.resolved()
        table = compute_rows(resolved)
        return MaterializedView(resolved, table)

    def rematerialize(self) -> None:
        """Recompute this view's rows from base data, in place."""
        fresh = compute_rows(self.definition)
        self.table.truncate()
        self.table.insert_many(fresh.scan())
