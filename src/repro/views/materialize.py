"""Materialisation of summary views and the stored-view wrapper.

:func:`materialize` computes a summary view from scratch: join the fact
table with the view's dimension tables, apply the selection, and
hash-aggregate on the group-by attributes.  This is both the initial load
path and the *rematerialisation* baseline the paper benchmarks against.

:class:`MaterializedView` couples the resolved definition with its stored
table (indexed on the group-by columns, as in the paper's experimental
setup) and provides user-facing reads that hide synthetic columns and
evaluate derived (``AVG``) outputs.
"""

from __future__ import annotations

from typing import Any

from ..errors import DefinitionError
from ..obs.audit import ViewCertificate, ViewFreshness, certificates_enabled
from ..relational.aggregation import group_by as physical_group_by
from ..relational.expressions import col
from ..relational.operators import select
from ..relational.schema import Schema
from ..relational.table import Table
from .definition import SummaryViewDefinition


def compute_rows(definition: SummaryViewDefinition, name: str | None = None) -> Table:
    """Compute the view's content from base data (no wrapper, no index)."""
    if not definition.is_resolved():
        raise DefinitionError(
            f"view {definition.name!r} must be resolved before materialisation"
        )
    source = definition.fact.join_dimensions(
        definition.fact.table, definition.dimensions
    )
    if definition.where is not None:
        source = select(source, definition.where)
    aggregates = [
        (output.name,
         output.function.argument if output.function.argument is not None else col(
             source.schema.columns[0]),
         output.function.base_reducer())
        for output in definition.aggregates
    ]
    return physical_group_by(
        source, definition.group_by, aggregates, name=name or definition.name
    )


class MaterializedView:
    """A stored summary table: resolved definition + indexed rows."""

    def __init__(self, definition: SummaryViewDefinition, table: Table):
        if table.schema != definition.storage_schema():
            raise DefinitionError(
                f"stored table for {definition.name!r} has schema "
                f"{list(table.schema.columns)}, expected "
                f"{list(definition.storage_schema().columns)}"
            )
        self.definition = definition
        self.table = table
        if definition.group_by:
            table.create_index(list(definition.group_by))
        #: Incremental consistency certificate, kept in sync with the
        #: stored rows via the table's mutation observers (``None`` when
        #: disabled through ``REPRO_CERTIFICATES=0``).  Built from
        #: ``table.rows()`` — not ``scan()`` — because certificate
        #: bookkeeping must not charge tuple-access accounting.
        self.certificate: ViewCertificate | None = None
        if certificates_enabled():
            self.certificate = ViewCertificate.from_rows(table.rows())
            table.attach_observer(self.certificate)
        #: Per-view freshness (last refresh time / run id / kind).
        self.freshness = ViewFreshness()

    def __repr__(self) -> str:
        return f"MaterializedView({self.definition.name!r}, {len(self.table)} rows)"

    @property
    def name(self) -> str:
        return self.definition.name

    def group_key_index(self):
        """The index on the group-by columns (``None`` for global views)."""
        if not self.definition.group_by:
            return None
        return self.table.index_on(list(self.definition.group_by))

    def read(self) -> Table:
        """User-facing content: synthetic columns hidden, derived outputs
        (AVG) evaluated with SQL division semantics."""
        definition = self.definition
        user_columns = definition.user_columns()
        schema = Schema(user_columns)
        positions = {
            column: definition.storage_schema().position(column)
            for column in definition.storage_schema().columns
        }
        derived_by_name = {d.name: d for d in definition.derived}
        result = Table(f"{definition.name}_read", schema)
        for row in self.table.scan():
            values: list[Any] = []
            for column in user_columns:
                if column in derived_by_name:
                    spec = derived_by_name[column]
                    numerator = row[positions[spec.numerator]]
                    denominator = row[positions[spec.denominator]]
                    if numerator is None or not denominator:
                        values.append(None)
                    else:
                        values.append(numerator / denominator)
                else:
                    values.append(row[positions[column]])
            result.insert(tuple(values))
        return result

    @staticmethod
    def build(definition: SummaryViewDefinition) -> "MaterializedView":
        """Resolve *definition*, compute it from base data, and wrap it."""
        resolved = definition if definition.is_resolved() else definition.resolved()
        table = compute_rows(resolved)
        return MaterializedView(resolved, table)

    def rematerialize(self) -> None:
        """Recompute this view's rows from base data, in place."""
        fresh = compute_rows(self.definition)
        self.table.truncate()
        self.table.insert_many(fresh.scan())
