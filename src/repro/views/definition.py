"""Generalized cube view definitions — the paper's summary tables.

A *generalized cube view* (paper, Section 3.2) is a single
``SELECT-FROM-WHERE-GROUPBY`` block over a fact table, optionally joined
with dimension tables along foreign keys, computing distributive (or
algebraic) aggregate functions.  :class:`SummaryViewDefinition` is the
declarative description of one such view; it is a pure value object — the
materialised rows live in :class:`~repro.views.materialize.MaterializedView`.

Self-maintainability augmentation (paper, Sections 3.1 and 5.4) happens in
:meth:`SummaryViewDefinition.resolved`:

* ``AVG(e)`` is replaced by stored ``SUM(e)`` and ``COUNT(e)`` components
  plus a *derived output* exposing the quotient;
* ``COUNT(*)`` is added when missing;
* ``COUNT(e)`` is added for each distinct argument of ``SUM``/``MIN``/``MAX``.

Augmentation-added columns are flagged ``synthetic`` so user-facing reads
can hide them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

from ..aggregates.base import AggregateFunction
from ..aggregates.standard import Avg, Count, CountStar
from ..errors import DefinitionError
from ..relational.expressions import Expression
from ..relational.schema import Schema

if TYPE_CHECKING:  # imported lazily to avoid a package-init cycle
    from ..warehouse.dimension import DimensionTable
    from ..warehouse.fact import FactTable


@dataclass(frozen=True)
class AggregateOutput:
    """One aggregate column of a summary view.

    ``synthetic`` marks columns added by self-maintainability augmentation
    (they are stored but hidden from user-facing output by default).
    """

    name: str
    function: AggregateFunction
    synthetic: bool = False

    def render(self) -> str:
        return f"{self.function.render()} AS {self.name}"


@dataclass(frozen=True)
class DerivedOutput:
    """A virtual output computed from stored columns at read time.

    Only used for ``AVG`` today: ``name = numerator / denominator`` with
    SQL semantics (null when the denominator is 0/null).
    """

    name: str
    numerator: str
    denominator: str


@dataclass(frozen=True)
class SummaryViewDefinition:
    """A declarative summary-table definition.

    Parameters
    ----------
    name:
        View name (e.g. ``"SID_sales"``).
    fact:
        The fact table the view aggregates.
    group_by:
        Group-by attributes; each must be a column of the fact table or of
        one of the joined dimension tables.
    aggregates:
        The aggregate outputs.
    dimensions:
        Names of dimension tables joined into the view (each must be a
        declared foreign key of the fact table — dimension joins are always
        along foreign keys, Section 3.3).
    where:
        Optional selection predicate over fact ⋈ dimensions.
    derived:
        Virtual outputs (populated by :meth:`resolved` for ``AVG``).
    """

    name: str
    fact: FactTable
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateOutput, ...]
    dimensions: tuple[str, ...] = ()
    where: Expression | None = None
    derived: tuple[DerivedOutput, ...] = field(default=())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def create(
        name: str,
        fact: FactTable,
        group_by: Iterable[str],
        aggregates: Iterable[tuple[str, AggregateFunction]],
        dimensions: Iterable[str] = (),
        where: Expression | None = None,
    ) -> "SummaryViewDefinition":
        """Build a definition from plain tuples and validate it."""
        definition = SummaryViewDefinition(
            name=name,
            fact=fact,
            group_by=tuple(group_by),
            aggregates=tuple(
                AggregateOutput(output_name, function)
                for output_name, function in aggregates
            ),
            dimensions=tuple(dimensions),
            where=where,
        )
        definition.validate()
        return definition

    # ------------------------------------------------------------------
    # Source relation bookkeeping
    # ------------------------------------------------------------------

    def joined_dimensions(self) -> tuple[DimensionTable, ...]:
        """The dimension tables this view joins, in declaration order."""
        return tuple(self.fact.dimension(name) for name in self.dimensions)

    def source_columns(self) -> tuple[str, ...]:
        """Columns available after fact ⋈ dimensions (duplicate dimension-key
        columns are exposed under their fact-side name only)."""
        columns = list(self.fact.columns)
        seen = set(columns)
        for dim in self.joined_dimensions():
            for column in dim.columns:
                if column not in seen:
                    columns.append(column)
                    seen.add(column)
        return tuple(columns)

    def source_schema(self) -> Schema:
        """Schema of the joined source relation (fact-side names win)."""
        return Schema(self.source_columns())

    def attribute_owner(self, attribute: str) -> str:
        """Return ``'fact'`` or the owning dimension's name for *attribute*."""
        if attribute in self.fact.columns:
            return "fact"
        for dim in self.joined_dimensions():
            if attribute in dim.columns:
                return dim.name
        raise DefinitionError(
            f"view {self.name!r}: attribute {attribute!r} is not a column of "
            f"{self.fact.name!r} or its joined dimensions {list(self.dimensions)}"
        )

    # ------------------------------------------------------------------
    # Validation and resolution
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness; raise ``DefinitionError``."""
        if not self.name:
            raise DefinitionError("view name must be non-empty")
        for dimension_name in self.dimensions:
            self.fact.foreign_key_for(dimension_name)  # raises when absent
        available = set(self.source_columns())
        if len(set(self.group_by)) != len(self.group_by):
            raise DefinitionError(
                f"view {self.name!r} repeats a group-by attribute"
            )
        for attribute in self.group_by:
            if attribute not in available:
                raise DefinitionError(
                    f"view {self.name!r}: unknown group-by attribute {attribute!r}"
                )
        output_names = [output.name for output in self.aggregates]
        all_names = list(self.group_by) + output_names
        if len(set(all_names)) != len(all_names):
            raise DefinitionError(
                f"view {self.name!r} has duplicate output column names"
            )
        if not self.aggregates:
            raise DefinitionError(
                f"view {self.name!r} computes no aggregates; summary tables "
                "must aggregate"
            )
        for output in self.aggregates:
            output.function.ensure_supported()
            missing = output.function.referenced_columns() - available
            if missing:
                raise DefinitionError(
                    f"view {self.name!r}: aggregate {output.render()} references "
                    f"unknown columns {sorted(missing)}"
                )
        if self.where is not None:
            missing = self.where.columns() - available
            if missing:
                raise DefinitionError(
                    f"view {self.name!r}: WHERE references unknown columns "
                    f"{sorted(missing)}"
                )

    def is_resolved(self) -> bool:
        """True when augmentation has already been performed."""
        functions = [output.function for output in self.aggregates]
        if any(isinstance(function, Avg) for function in functions):
            return False
        if not any(isinstance(function, CountStar) for function in functions):
            return False
        count_args = {
            function.argument for function in functions if isinstance(function, Count)
        }
        for function in functions:
            if function.kind in ("sum", "min", "max") and function.argument not in count_args:
                return False
        return True

    def resolved(self) -> "SummaryViewDefinition":
        """Return the self-maintainable version of this definition.

        Idempotent: resolving an already-resolved definition returns an
        equal definition.
        """
        self.validate()
        outputs: list[AggregateOutput] = []
        derived: list[DerivedOutput] = list(self.derived)
        used_names = set(self.group_by) | {output.name for output in self.aggregates}

        def fresh_name(candidate: str) -> str:
            name = candidate
            suffix = 2
            while name in used_names:
                name = f"{candidate}{suffix}"
                suffix += 1
            used_names.add(name)
            return name

        def find_output(function: AggregateFunction) -> AggregateOutput | None:
            for output in outputs:
                if output.function == function:
                    return output
            return None

        def ensure_output(function: AggregateFunction, candidate_name: str) -> AggregateOutput:
            existing = find_output(function)
            if existing is not None:
                return existing
            output = AggregateOutput(fresh_name(candidate_name), function, synthetic=True)
            outputs.append(output)
            return output

        # Pass 1: keep user outputs, decomposing AVG.
        for output in self.aggregates:
            if isinstance(output.function, Avg):
                sum_part, count_part = output.function.components()
                sum_output = ensure_output(sum_part, f"_sum_{output.name}")
                count_output = ensure_output(count_part, f"_cnt_{output.name}")
                derived.append(
                    DerivedOutput(output.name, sum_output.name, count_output.name)
                )
            else:
                outputs.append(output)

        # Pass 2: add companions required for self-maintainability.
        for output in list(outputs):
            for companion in output.function.companions_for_self_maintenance():
                if isinstance(companion, CountStar):
                    ensure_output(companion, "_count")
                else:
                    ensure_output(companion, f"_cnt_{output.name}")

        # Views computing only COUNT(*)/COUNT(e) still need COUNT(*).
        ensure_output(CountStar(), "_count")

        resolved_def = replace(
            self,
            aggregates=tuple(outputs),
            derived=tuple(derived),
        )
        resolved_def.validate()
        return resolved_def

    # ------------------------------------------------------------------
    # Stored-schema helpers (valid on resolved definitions)
    # ------------------------------------------------------------------

    def storage_schema(self) -> Schema:
        """Schema of the materialised table: group-bys then aggregates."""
        return Schema(
            list(self.group_by) + [output.name for output in self.aggregates]
        )

    def count_star_column(self) -> str:
        """Name of the stored ``COUNT(*)`` column (resolved views only)."""
        for output in self.aggregates:
            if isinstance(output.function, CountStar):
                return output.name
        raise DefinitionError(
            f"view {self.name!r} has no COUNT(*) column; call .resolved() first"
        )

    def count_column_for(self, argument: Expression) -> str | None:
        """Name of the stored ``COUNT(argument)`` column, if any."""
        for output in self.aggregates:
            if isinstance(output.function, Count) and not isinstance(
                output.function, CountStar
            ) and output.function.argument == argument:
                return output.name
        return None

    def user_columns(self) -> tuple[str, ...]:
        """The user-facing columns: group-bys, non-synthetic aggregates,
        and derived outputs."""
        columns = list(self.group_by)
        columns.extend(
            output.name for output in self.aggregates if not output.synthetic
        )
        columns.extend(d.name for d in self.derived)
        return tuple(columns)

    def aggregate_by_name(self, name: str) -> AggregateOutput:
        """Look up an aggregate output by column name."""
        for output in self.aggregates:
            if output.name == name:
                return output
        raise DefinitionError(f"view {self.name!r} has no aggregate column {name!r}")
