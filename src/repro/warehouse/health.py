"""Warehouse health: freshness status, integrity audits, fault injection.

The operational layer over :mod:`repro.obs.audit`:

* :func:`warehouse_status` — one :class:`ViewStatus` per summary table:
  row count, maintained certificate, certificate-vs-stored verdict,
  last-refresh run id/kind, pending change counts, staleness seconds
  (the ``repro status`` table);
* :func:`export_status_gauges` — the same quantities as labelled metrics
  gauges (``freshness.staleness_seconds{view=...}`` and friends);
* :func:`audit_warehouse` — the corruption-detecting audit.  Full mode
  compares three certificates per view — *maintained* (incremental),
  *stored* (recomputed from the stored rows), *expected* (recomputed
  from base data) — so ``certificate == recompute`` certifies the view
  without a row-by-row table comparison.  Sample mode re-derives *k*
  random summary tuples from base facts instead of recomputing the whole
  view.  Both modes cross-check derivable views against their D-lattice
  parent (Theorem 5.1): the child's rows must equal what the edge query
  derives from the parent.  Parent mismatches are *warnings* — they
  implicate the edge, not a specific endpoint — so a corrupt parent
  never flags a clean child as FAILED.
* :func:`inject_corruption` — fault injection for tests and the CI
  smoke: mutate an aggregate, drop a group, insert a phantom group
  (all bypassing the certificate observers, simulating storage
  corruption), or skip one view's delta application (``missed-delta``).

How each corruption class is caught:

=============  ============================================  =========
class          detector                                      mode
=============  ============================================  =========
mutate         maintained ≠ stored (certificate drift)       any
drop           maintained ≠ stored                           any
phantom        maintained ≠ stored; drill-down finds no       any
               base rows for the group
missed-delta   maintained = stored ≠ expected (the view       full
               is internally consistent but stale);           (sampled:
               drill-down catches sampled stale groups        best-effort)
=============  ============================================  =========
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..obs.audit import (
    IntegrityEvent,
    ViewFreshness,
    record_events,
    row_digest,
    rows_certificate,
)

if TYPE_CHECKING:  # pragma: no cover
    from .catalog import Warehouse

__all__ = [
    "AuditReport",
    "CORRUPTION_KINDS",
    "ViewAuditResult",
    "ViewStatus",
    "audit_warehouse",
    "export_status_gauges",
    "format_status",
    "inject_corruption",
    "warehouse_status",
]


# ----------------------------------------------------------------------
# Status (freshness + certificate table)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ViewStatus:
    """One summary table's health line."""

    name: str
    fact: str
    rows: int
    certificate: str | None          #: maintained certificate (hex)
    certificate_ok: bool | None      #: maintained == stored (None: disabled)
    freshness: ViewFreshness
    pending_insertions: int
    pending_deletions: int
    staleness_seconds: float


def warehouse_status(
    warehouse: "Warehouse",
    now: float | None = None,
    verify_certificates: bool = True,
) -> list[ViewStatus]:
    """One :class:`ViewStatus` per summary table, name-sorted.

    With *verify_certificates* each view's stored rows are re-digested
    and compared against the maintained certificate — O(|view|) digests,
    the point of a status check.  Pass ``False`` for a cheap listing.
    """
    now = now if now is not None else time.time()
    statuses: list[ViewStatus] = []
    for name in sorted(warehouse.views):
        view = warehouse.views[name]
        fact_name = view.definition.fact.name
        pending = warehouse.pending_changes(fact_name)
        certificate_ok: bool | None = None
        certificate_hex: str | None = None
        if view.certificate is not None:
            certificate_hex = view.certificate.hex
            if verify_certificates:
                certificate_ok = (
                    view.certificate.value
                    == rows_certificate(view.table.rows())
                )
        statuses.append(ViewStatus(
            name=name,
            fact=fact_name,
            rows=len(view.table),
            certificate=certificate_hex,
            certificate_ok=certificate_ok,
            freshness=view.freshness,
            pending_insertions=len(pending.insertions),
            pending_deletions=len(pending.deletions),
            staleness_seconds=view.freshness.staleness_seconds(now),
        ))
    return statuses


def export_status_gauges(
    warehouse: "Warehouse",
    metrics=None,
    now: float | None = None,
) -> None:
    """Export per-view freshness/integrity gauges to the registry."""
    from ..obs import metrics as obs_metrics

    registry = metrics if metrics is not None else obs_metrics.registry()
    for status in warehouse_status(warehouse, now=now):
        labels = {"view": status.name}
        registry.gauge("freshness.staleness_seconds", labels=labels).set(
            round(status.staleness_seconds, 3)
        )
        registry.gauge("freshness.pending_insertions", labels=labels).set(
            status.pending_insertions
        )
        registry.gauge("freshness.pending_deletions", labels=labels).set(
            status.pending_deletions
        )
        registry.gauge("freshness.refresh_count", labels=labels).set(
            status.freshness.refresh_count
        )
        if status.certificate_ok is not None:
            registry.gauge("integrity.certificate_ok", labels=labels).set(
                1 if status.certificate_ok else 0
            )


def format_status(statuses: Iterable[ViewStatus]) -> str:
    """The fleet-wide status table ``repro status`` prints."""
    header = (
        f"{'view':<12} {'rows':>8} {'cert':<18} {'ok':<4} "
        f"{'run':>4} {'kind':<16} {'stale_s':>8} {'+pend':>6} {'-pend':>6}"
    )
    lines = [header, "-" * len(header)]
    for status in statuses:
        if status.certificate_ok is None:
            verdict = "-" if status.certificate is None else "?"
        else:
            verdict = "ok" if status.certificate_ok else "DRIFT"
        run_id = status.freshness.last_refresh_run_id
        lines.append(
            f"{status.name:<12} {status.rows:>8,} "
            f"{status.certificate or '-':<18} {verdict:<4} "
            f"{run_id if run_id is not None else '-':>4} "
            f"{status.freshness.last_refresh_kind or '-':<16} "
            f"{status.staleness_seconds:>8.1f} "
            f"{status.pending_insertions:>6,} {status.pending_deletions:>6,}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Audits
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ViewAuditResult:
    """One summary table's audit verdict."""

    name: str
    mode: str                        #: "full" or "sample"
    rows: int
    maintained: int | None           #: incremental certificate (None: off)
    stored: int                      #: certificate of the stored rows
    expected: int | None             #: certificate of recompute (full mode)
    expected_rows: int | None
    drilldown_checked: int
    parent: str | None
    #: Own-content check failures (these determine the verdict).
    failures: tuple[str, ...]
    #: All events, including non-verdict parent-mismatch warnings.
    events: tuple[IntegrityEvent, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else "FAIL"


@dataclass
class AuditReport:
    """Outcome of one warehouse-wide integrity audit."""

    mode: str
    sample: int | None
    results: dict[str, ViewAuditResult] = field(default_factory=dict)
    ts: float = field(default_factory=time.time)

    @property
    def passed(self) -> bool:
        return all(result.ok for result in self.results.values())

    @property
    def failed_views(self) -> list[str]:
        return sorted(
            name for name, result in self.results.items() if not result.ok
        )

    @property
    def events(self) -> list[IntegrityEvent]:
        out: list[IntegrityEvent] = []
        for name in sorted(self.results):
            out.extend(self.results[name].events)
        return out

    def format(self) -> str:
        header = (
            f"{'view':<12} {'verdict':<8} {'rows':>8} {'checks':<44}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.results):
            result = self.results[name]
            checks: list[str] = []
            if result.maintained is not None:
                drift = result.maintained != result.stored
                checks.append("cert:DRIFT" if drift else "cert:ok")
            if result.expected is not None:
                stale = result.stored != result.expected
                checks.append("recompute:STALE" if stale else "recompute:ok")
            if result.drilldown_checked:
                failed = any(
                    e.kind == "drilldown-mismatch" for e in result.events
                )
                checks.append(
                    f"drilldown[{result.drilldown_checked}]:"
                    f"{'FAIL' if failed else 'ok'}"
                )
            if result.parent is not None:
                mismatch = any(
                    e.kind == "parent-mismatch" for e in result.events
                )
                checks.append(
                    f"parent({result.parent}):"
                    f"{'MISMATCH' if mismatch else 'ok'}"
                )
            lines.append(
                f"{name:<12} {result.verdict:<8} {result.rows:>8,} "
                f"{' '.join(checks):<44}"
            )
        for event in self.events:
            lines.append(
                f"[{event.severity}] {event.view}: {event.message}"
            )
        lines.append(
            f"verdict: {'PASS' if self.passed else 'FAIL'}"
            + (f" ({', '.join(self.failed_views)})" if not self.passed else "")
        )
        return "\n".join(lines)

    def to_record(self) -> dict[str, Any]:
        """The audit as one run-ledger record (``kind="audit"``)."""
        return {
            "kind": "audit",
            "mode": self.mode,
            "sample": self.sample,
            "passed": self.passed,
            "views": {
                name: {
                    "verdict": result.verdict,
                    "failures": list(result.failures),
                    "maintained": (
                        f"{result.maintained:016x}"
                        if result.maintained is not None else None
                    ),
                    "stored": f"{result.stored:016x}",
                    "expected": (
                        f"{result.expected:016x}"
                        if result.expected is not None else None
                    ),
                    "rows": result.rows,
                    "drilldown_checked": result.drilldown_checked,
                }
                for name, result in sorted(self.results.items())
            },
            "events": [event.as_dict() for event in self.events],
        }


def _audit_view(
    view,
    parent_view,
    edge,
    sample: int | None,
    rng: random.Random,
) -> ViewAuditResult:
    """Audit one view.  *parent_view*/*edge* are the D-lattice derivation
    source when the parent is itself materialised (else ``None``)."""
    from ..core.maintenance import base_recompute_fn
    from ..views.materialize import compute_rows

    name = view.definition.name
    mode = "full" if sample is None else "sample"
    failures: list[str] = []
    events: list[IntegrityEvent] = []
    rows = view.table.rows()
    arity = len(view.definition.group_by)

    maintained = (
        view.certificate.value if view.certificate is not None else None
    )
    stored = rows_certificate(rows)
    if maintained is not None and maintained != stored:
        failures.append("certificate-drift")
        events.append(IntegrityEvent(
            severity="critical", kind="certificate-drift", view=name,
            message=(
                f"maintained certificate {maintained:016x} != stored rows "
                f"certificate {stored:016x}: the stored table was mutated "
                "outside maintenance"
            ),
        ))

    expected: int | None = None
    expected_rows: int | None = None
    drilldown_checked = 0

    if sample is None:
        fresh = compute_rows(view.definition)
        expected = rows_certificate(fresh.rows())
        expected_rows = len(fresh)
        if stored != expected:
            failures.append("recompute-mismatch")
            events.append(IntegrityEvent(
                severity="critical", kind="recompute-mismatch", view=name,
                message=(
                    f"stored certificate {stored:016x} ({len(rows)} rows) "
                    f"!= recompute certificate {expected:016x} "
                    f"({expected_rows} rows): the view does not equal "
                    "rematerialisation from base data"
                ),
            ))
    else:
        k = min(sample, len(rows))
        sampled = rng.sample(rows, k) if k else []
        drilldown_checked = len(sampled)
        if sampled:
            recompute = base_recompute_fn(view.definition)
            derived = recompute([row[:arity] for row in sampled])
            bad = 0
            for row in sampled:
                values = derived.get(row[:arity])
                if values is None or row_digest(row) != row_digest(
                    row[:arity] + tuple(values)
                ):
                    bad += 1
            if bad:
                failures.append("drilldown-mismatch")
                events.append(IntegrityEvent(
                    severity="critical", kind="drilldown-mismatch",
                    view=name,
                    message=(
                        f"{bad} of {len(sampled)} sampled groups do not "
                        "match re-derivation from base facts"
                    ),
                ))

    if parent_view is not None and edge is not None:
        derived_table = edge.apply(parent_view.table)
        if sample is None:
            parent_cert = rows_certificate(derived_table.rows())
            mismatch = parent_cert != stored
        else:
            by_key = {row[:arity]: row for row in derived_table.rows()}
            checked = rng.sample(rows, min(sample, len(rows)))
            mismatch = any(
                (got := by_key.get(row[:arity])) is None
                or row_digest(got) != row_digest(row)
                for row in checked
            )
        if mismatch:
            events.append(IntegrityEvent(
                severity="warning", kind="parent-mismatch", view=name,
                message=(
                    f"rows derived from parent {parent_view.name!r} "
                    "(Theorem 5.1 edge query) disagree with the stored "
                    "rows: one endpoint of the edge is corrupt or stale"
                ),
            ))

    return ViewAuditResult(
        name=name,
        mode=mode,
        rows=len(rows),
        maintained=maintained,
        stored=stored,
        expected=expected,
        expected_rows=expected_rows,
        drilldown_checked=drilldown_checked,
        parent=parent_view.name if parent_view is not None else None,
        failures=tuple(failures),
        events=tuple(events),
    )


def audit_warehouse(
    warehouse: "Warehouse",
    sample: int | None = None,
    rng: random.Random | None = None,
    metrics=None,
    record: bool = True,
) -> AuditReport:
    """Audit every summary table; return per-view verdicts.

    ``sample=None`` runs the full audit (three-way certificate
    comparison per view); ``sample=k`` re-derives *k* random summary
    tuples per view from base facts instead.  Detected events are fed to
    the metrics registry unconditionally, and with *record* the report is
    appended to the active run ledger as a ``kind="audit"`` record.
    """
    from ..lattice.plan import build_lattice_for_views
    from ..obs import metrics as obs_metrics
    from ..obs import tracing
    from ..obs.ledger import active_ledger

    rng = rng if rng is not None else random.Random(0)
    report = AuditReport(
        mode="full" if sample is None else "sample", sample=sample
    )
    with tracing.span("audit", views=len(warehouse.views), mode=report.mode):
        for fact_name in sorted(warehouse.facts):
            views = warehouse.views_over(fact_name)
            if not views:
                continue
            by_name = {view.name: view for view in views}
            lattice = (
                build_lattice_for_views(views) if len(views) > 1 else None
            )
            for view in views:
                parent_view = edge = None
                if lattice is not None:
                    node = lattice.node(view.name)
                    if not node.is_root:
                        parent_view = by_name.get(node.parent)
                        edge = node.edge if parent_view is not None else None
                with tracing.span("audit:" + view.name):
                    report.results[view.name] = _audit_view(
                        view, parent_view, edge, sample, rng
                    )

    registry = metrics if metrics is not None else obs_metrics.registry()
    record_events(report.events, metrics=registry)
    registry.counter("integrity.audits").inc()
    registry.gauge("integrity.last_audit_ok").set(1 if report.passed else 0)
    for name, result in report.results.items():
        registry.gauge(
            "integrity.view_ok", labels={"view": name}
        ).set(1 if result.ok else 0)

    if record:
        ledger = active_ledger()
        if ledger is not None:
            ledger.append(report.to_record())
    return report


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------

CORRUPTION_KINDS = ("mutate", "drop", "phantom", "missed-delta")


def _pick_view(warehouse: "Warehouse", view_name: str | None):
    if view_name is not None:
        return warehouse.view(view_name)
    for name in sorted(warehouse.views):
        if len(warehouse.views[name].table):
            return warehouse.views[name]
    raise ValueError("no non-empty summary table to corrupt")


def _live_slots(table) -> list[int]:
    return [slot for slot, _row in table.slots()]


class _suppressed_observers:
    """Detach a table's observers for the block — mutations inside happen
    behind the certificate's back, exactly like storage corruption."""

    def __init__(self, table):
        self._table = table
        self._detached: tuple = ()

    def __enter__(self):
        self._detached = self._table.observers
        for observer in self._detached:
            self._table.detach_observer(observer)
        return self._table

    def __exit__(self, exc_type, exc, tb) -> bool:
        for observer in self._detached:
            self._table.attach_observer(observer)
        return False


def inject_corruption(
    warehouse: "Warehouse",
    kind: str,
    rng: random.Random | None = None,
    view_name: str | None = None,
) -> str:
    """Inject one corruption of *kind* into the warehouse; return a
    description of what was done.

    ``mutate``/``drop``/``phantom`` alter the chosen view's stored table
    with its certificate observers detached (simulating bit-rot or an
    out-of-band writer).  ``missed-delta`` stages a small change set,
    maintains every *other* view over the same fact table, and applies
    the base changes — leaving the target view internally consistent but
    stale, the signature of a delta that was never applied.
    """
    if kind not in CORRUPTION_KINDS:
        raise ValueError(
            f"unknown corruption kind {kind!r}; expected one of "
            f"{CORRUPTION_KINDS}"
        )
    rng = rng if rng is not None else random.Random(0)
    view = _pick_view(warehouse, view_name)
    table = view.table
    arity = len(view.definition.group_by)

    if kind == "mutate":
        slots = _live_slots(table)
        slot = rng.choice(slots)
        row = list(table.row_at(slot))
        column = (
            rng.randrange(arity, len(row)) if len(row) > arity else 0
        )
        old_value = row[column]
        if old_value is None:
            row[column] = 1
        elif isinstance(old_value, (int, float)) and not isinstance(
            old_value, bool
        ):
            row[column] = old_value + 1
        else:
            row[column] = f"~{old_value}"
        with _suppressed_observers(table):
            table.update_slot(slot, tuple(row))
        return (
            f"mutate: view {view.name!r} slot {slot} column "
            f"{table.schema.columns[column]!r}: {old_value!r} -> "
            f"{row[column]!r}"
        )

    if kind == "drop":
        slots = _live_slots(table)
        slot = rng.choice(slots)
        with _suppressed_observers(table):
            dropped = table.delete_slot(slot)
        return f"drop: view {view.name!r} lost group {dropped[:arity]!r}"

    if kind == "phantom":
        donor = rng.choice(table.rows())
        index = view.group_key_index()
        phantom = None
        for attempt in range(1000):
            key = list(donor[:arity])
            if key:
                value = key[0]
                if isinstance(value, str):
                    key[0] = f"phantom-{attempt}"
                elif isinstance(value, (int, float)):
                    key[0] = -(10 ** 9) - attempt
                else:
                    key[0] = f"phantom-{attempt}"
            candidate = tuple(key) + donor[arity:]
            if index is None or index.lookup_one(tuple(key)) is None:
                phantom = candidate
                break
        if phantom is None:  # pragma: no cover - 1000 collisions
            raise ValueError("could not synthesise an unused group key")
        with _suppressed_observers(table):
            table.insert(phantom)
        return (
            f"phantom: view {view.name!r} gained fabricated group "
            f"{phantom[:arity]!r}"
        )

    # missed-delta
    from ..lattice.plan import maintain_lattice
    from ..obs.ledger import suspended_ledger
    from .changes import ChangeSet

    fact = view.definition.fact
    sample_rows = fact.table.rows()
    if not sample_rows:
        raise ValueError(f"fact table {fact.name!r} is empty")
    staged = [rng.choice(sample_rows) for _ in range(min(20, len(sample_rows)))]
    changes = ChangeSet(fact.name, fact.table.schema)
    changes.insert_many(staged)
    others = [
        other for other in warehouse.views_over(fact.name)
        if other.name != view.name
    ]
    with suspended_ledger():
        if others:
            maintain_lattice(others, changes)
        else:
            changes.apply_to(fact.table)
    return (
        f"missed-delta: {len(staged)} base insertions applied to "
        f"{fact.name!r} and refreshed into {len(others)} other view(s), "
        f"but never into {view.name!r}"
    )
