"""Date-partitioned fact storage and shard-parallel maintenance.

The paper's nightly batch window is dominated by one serial pass over the
fact table's deferred changes.  Date is this repo's natural partition key:
it is the expiration key (old dates are dropped wholesale) and lineage
stamps batches by ingest time.  This module shards ``pos`` into per-date-
range segments and makes the three nightly phases embarrassingly parallel:

* :class:`ShardedTable` stores rows in per-date-range segments (columnar
  :class:`~repro.relational.table.ColumnStore` unless ``REPRO_COLUMNAR=0``)
  behind the standard :class:`~repro.relational.table.Table` slot contract,
  so every existing consumer — recompute, ``apply_to``, audits, indexes —
  works unchanged.  Scans are shard-major (segments in date order).
* :class:`PartitionedFactTable` installs a sharded table into a
  :class:`~repro.warehouse.fact.FactTable` (swapping ``fact.table``),
  routes change sets per shard, and turns expiration into whole-segment
  drops instead of row-at-a-time deletes.
* :class:`ParallelMaintenance` computes per-shard summary deltas on a
  ``concurrent.futures`` process pool (picklable shard work units; each
  worker runs the full lattice propagation — including the fused
  shared-scan kernels — over its shard's changes) and merges the partial
  deltas with the distributive ``Reducer.merge`` machinery
  (:func:`merge_summary_deltas`).  One merged Figure 7 refresh then runs
  per view, so certificates, lineage manifests, and epoch publishes are
  identical to the serial path.

Correctness contract: a summary-delta row stores reducer *states* (every
delta reducer — Sum for counts/sums, Min/Max for extrema — has an identity
finalise), so per-shard delta rows merge exactly like
``group_by_chunked``'s chunk partials.  Merged rows are emitted in the
canonical nulls-first sorted order, so *any* partitioning of the same
change set produces an identical delta table (the Hypothesis property in
``tests/differential/test_partition_differential.py``).  The merged delta carries the full
change set's lineage snapshot and is refreshed once per view — exactly one
epoch manifest per view per run, as in the serial path (refreshing per
shard would double-publish batch ids and raise
:class:`~repro.errors.LineageError`).

The whole path sits behind the ``REPRO_PARTITION`` kill-switch (default
off): maintenance only takes it when the switch (or the explicit
``PropagateOptions.partition`` knob) is on *and* the fact table has been
partitioned via :func:`partition_fact`.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence, TYPE_CHECKING

from ..core.deltas import MinMaxPolicy, SummaryDelta, delta_schema
from ..core.propagate import PropagateOptions, _delta_specs
from ..errors import InconsistentDeltaError, TableError
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..relational.schema import Schema
from ..relational.table import (
    ColumnStore,
    Row,
    RowStore,
    Table,
    charge_access,
    resolve_storage,
)
from ..relational.stats import ACCESS_FIELDS, measuring
from .changes import ChangeSet
from .fact import FactTable

if TYPE_CHECKING:  # pragma: no cover
    from ..lattice.vlattice import ViewLattice
    from ..warehouse.batch import BatchWindowClock

__all__ = [
    "ParallelMaintenance",
    "PartitionedFactTable",
    "ShardChanges",
    "ShardedTable",
    "merge_summary_deltas",
    "partition_enabled",
    "partition_fact",
    "propagate_partitioned",
]


def partition_enabled() -> bool:
    """Whether ``REPRO_PARTITION`` turns the partitioned path on (default
    off; any value other than empty/``0`` enables it)."""
    value = os.environ.get("REPRO_PARTITION", "")
    return bool(value) and value != "0"


def _shard_sort_key(key: Any) -> tuple:
    """Nulls-first ordering for shard keys (matching ``sorted_rows``)."""
    return (key is not None, key)


def _row_sort_key(row: Row) -> tuple:
    return tuple((value is not None, value) for value in row)


# ----------------------------------------------------------------------
# Sharded storage
# ----------------------------------------------------------------------

class ShardStore:
    """Slot-contract storage that routes rows into per-date-range segments.

    Global slots index a *directory* mapping each slot to its
    ``(shard key, local slot)`` home; segments are plain
    :class:`ColumnStore`/:class:`RowStore` backings.  Scans are shard-major
    (segments in nulls-first key order, insertion order within a segment),
    and ``rows()`` / ``column_lists()`` / ``iter_live()`` all agree on that
    order.  Re-storing a row whose date moved (or whose old segment was
    dropped) transparently re-routes it — the global slot is stable, only
    the directory entry changes — so slot recycling through the owning
    :class:`~repro.relational.table.Table`'s free list stays correct.
    """

    kind = "sharded"
    __slots__ = ("_arity", "_date_position", "_width", "_segment_kind",
                 "_shards", "_directory")

    def __init__(
        self,
        arity: int,
        date_position: int,
        width: int = 1,
        segment_kind: str = "column",
    ) -> None:
        self._arity = arity
        self._date_position = date_position
        self._width = width
        self._segment_kind = segment_kind
        self._shards: dict[Any, ColumnStore | RowStore] = {}
        self._directory: list[tuple[Any, int] | None] = []

    # -- routing -------------------------------------------------------

    def key_of_date(self, date: Any) -> Any:
        """The shard key a row with this date value routes to."""
        if date is None or self._width == 1:
            return date
        return date // self._width

    def _key_of_row(self, row: Row) -> Any:
        return self.key_of_date(row[self._date_position])

    def _segment(self, key: Any) -> ColumnStore | RowStore:
        segment = self._shards.get(key)
        if segment is None:
            segment = (
                RowStore() if self._segment_kind == "row"
                else ColumnStore(self._arity)
            )
            self._shards[key] = segment
        return segment

    def shard_keys(self) -> list[Any]:
        """Shard keys in scan (nulls-first) order."""
        return sorted(self._shards, key=_shard_sort_key)

    def shard_live_count(self, key: Any) -> int:
        segment = self._shards[key]
        if isinstance(segment, ColumnStore):
            return segment.size() - segment._dead  # noqa: SLF001
        return sum(1 for _ in segment.iter_live())

    def shard_rows(self, key: Any) -> list[Row]:
        return self._shards[key].rows()

    def enumerate_shard(self, key: Any) -> Iterator[tuple[int, Row]]:
        """``(global slot, row)`` pairs for one shard's live rows."""
        segment = self._shards[key]
        back: dict[int, int] = {}
        for global_slot, entry in enumerate(self._directory):
            if entry is not None and entry[0] == key:
                back[entry[1]] = global_slot
        for local, row in segment.enumerate_live():
            yield back[local], row

    def drop_shard(self, key: Any) -> int:
        """Drop one whole segment; return how many live rows it held.

        O(segment) only for the directory sweep — no per-row tombstoning,
        index, or free-list churn happens here (the owning table handles
        index/domain/observer maintenance when it must).
        """
        if key not in self._shards:
            raise TableError(f"no shard with key {key!r}")
        live = self.shard_live_count(key)
        del self._shards[key]
        directory = self._directory
        for slot, entry in enumerate(directory):
            if entry is not None and entry[0] == key:
                directory[slot] = None
        return live

    # -- slot contract -------------------------------------------------

    def size(self) -> int:
        return len(self._directory)

    def get(self, slot: int) -> Row | None:
        entry = self._directory[slot]
        if entry is None:
            return None
        segment = self._shards.get(entry[0])
        if segment is None:
            return None
        return segment.get(entry[1])

    def append(self, row: Row) -> int:
        key = self._key_of_row(row)
        local = self._segment(key).append(row)
        self._directory.append((key, local))
        return len(self._directory) - 1

    def set(self, slot: int, row: Row | None) -> None:
        entry = self._directory[slot]
        if row is None:
            if entry is None:
                return
            segment = self._shards.get(entry[0])
            if segment is not None:
                segment.set(entry[1], None)
            self._directory[slot] = None
            return
        key = self._key_of_row(row)
        if entry is not None:
            segment = self._shards.get(entry[0])
            if segment is not None:
                if entry[0] == key:
                    segment.set(entry[1], row)
                    return
                segment.set(entry[1], None)  # date moved: leave a tombstone
        local = self._segment(key).append(row)
        self._directory[slot] = (key, local)

    def clear(self) -> None:
        self._shards.clear()
        self._directory.clear()

    def iter_live(self) -> Iterator[Row]:
        for key in self.shard_keys():
            yield from self._shards[key].iter_live()

    def enumerate_live(self) -> Iterator[tuple[int, Row]]:
        back: dict[Any, dict[int, int]] = {}
        for global_slot, entry in enumerate(self._directory):
            if entry is not None:
                back.setdefault(entry[0], {})[entry[1]] = global_slot
        for key in self.shard_keys():
            shard_back = back.get(key, {})
            for local, row in self._shards[key].enumerate_live():
                yield shard_back[local], row

    def rows(self) -> list[Row]:
        out: list[Row] = []
        for key in self.shard_keys():
            out.extend(self._shards[key].rows())
        return out

    def slot_list(self) -> list[Row | None]:
        out: list[Row | None] = [None] * len(self._directory)
        for slot, entry in enumerate(self._directory):
            if entry is None:
                continue
            segment = self._shards.get(entry[0])
            if segment is not None:
                out[slot] = segment.get(entry[1])
        return out

    def column_lists(self, positions: Sequence[int]) -> list[list[Any]]:
        out: list[list[Any]] = [[] for _ in positions]
        for key in self.shard_keys():
            part = self._shards[key].column_lists(positions)
            for i, column in enumerate(part):
                out[i].extend(column)
        return out

    def promote_columns(self) -> int:
        """Promote each segment's plain-list columns to typed arrays."""
        promoted = 0
        for segment in self._shards.values():
            promote = getattr(segment, "promote_columns", None)
            if promote is not None:
                promoted += promote()
        return promoted

    def append_batch(self, columns: Sequence[Sequence[Any]], n: int) -> None:
        dates = columns[self._date_position]
        buckets: dict[Any, list[int]] = {}
        for j in range(n):
            key = self.key_of_date(dates[j])
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [j]
            else:
                bucket.append(j)
        directory = self._directory
        for key in sorted(buckets, key=_shard_sort_key):
            picks = buckets[key]
            segment = self._segment(key)
            base = segment.size()
            if len(picks) == n:
                segment.append_batch(columns, n)
            else:
                sub = [[column[j] for j in picks] for column in columns]
                segment.append_batch(sub, len(picks))
            directory.extend((key, base + i) for i in range(len(picks)))


class ShardedTable(Table):
    """A :class:`Table` whose storage is date-sharded per-range segments.

    Indexes, tracked domains, and observers work exactly as on a plain
    table.  :meth:`drop_shard` removes one whole segment: O(1) plus a
    directory sweep when the table has no indexes/domains/observers,
    otherwise per-row index and domain maintenance still runs (without any
    tombstone or free-slot churn).
    """

    def __init__(
        self,
        name: str,
        schema: Schema | Sequence[str],
        date_column: str,
        rows: Sequence[Any] = (),
        width: int = 1,
        segment_storage: str | None = None,
    ) -> None:
        if not isinstance(width, int) or isinstance(width, bool) or width < 1:
            raise TableError(f"shard width must be a positive int, got {width!r}")
        super().__init__(name, schema, rows=(), storage="row")
        self.date_column = date_column
        self.width = width
        # Segments prefer columnar storage; REPRO_COLUMNAR=0 still wins.
        segment_kind = resolve_storage(segment_storage or "column")
        self._store = ShardStore(
            len(self.schema),
            self.schema.position(date_column),
            width=width,
            segment_kind=segment_kind,
        )
        # Batch kernels key off .storage — segments answer like their kind.
        self.storage = segment_kind
        self.insert_many(rows)

    @property
    def shard_store(self) -> ShardStore:
        return self._store  # type: ignore[return-value]

    def shard_key_of(self, date: Any) -> Any:
        return self.shard_store.key_of_date(date)

    def shard_keys(self) -> list[Any]:
        return self.shard_store.shard_keys()

    def shard_sizes(self) -> dict[Any, int]:
        store = self.shard_store
        return {key: store.shard_live_count(key) for key in store.shard_keys()}

    def shard_rows(self, key: Any) -> list[Row]:
        """One shard's live rows, charged as a scan of that shard only."""
        rows = self.shard_store.shard_rows(key)
        charge_access("rows_scanned", len(rows))
        return rows

    def drop_shard(self, key: Any) -> int:
        """Drop one whole segment; return how many rows went with it.

        Charges ``rows_deleted`` for every dropped row (parity with the
        per-row delete path) but never scans or tombstones live segments.
        """
        store = self.shard_store
        if self._indexes or self._domains or self._observers:
            victims = list(store.enumerate_shard(key))
            for slot, row in victims:
                for index in self._indexes.values():
                    index.remove(row, slot)
                if self._domains:
                    for position, counts in self._domains.items():
                        value = row[position]
                        remaining = counts.get(value, 0) - 1
                        if remaining <= 0:
                            counts.pop(value, None)
                        else:
                            counts[value] = remaining
                for observer in self._observers:
                    observer.row_deleted(row)
            dropped = store.drop_shard(key)
        else:
            dropped = store.drop_shard(key)
        self._live_count -= dropped
        self._charge("rows_deleted", dropped)
        return dropped


# ----------------------------------------------------------------------
# Partitioned fact table
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardChanges:
    """One shard's slice of a change set."""

    key: Any
    insertions: tuple[Row, ...]
    deletions: tuple[Row, ...]

    @property
    def change_rows(self) -> int:
        return len(self.insertions) + len(self.deletions)


class PartitionedFactTable:
    """A fact table re-stored as per-date-range shards.

    Construction swaps ``fact.table`` for a :class:`ShardedTable` holding
    the same rows, indexes, tracked domains, and observers, and registers
    itself as ``fact.partition`` so maintenance drivers can find it.  All
    existing consumers keep working — they read ``fact.table`` dynamically.
    """

    def __init__(
        self, fact: FactTable, date_column: str = "date", width: int = 1
    ) -> None:
        if getattr(fact, "partition", None) is not None:
            raise TableError(f"fact table {fact.name!r} is already partitioned")
        original = fact.table
        if date_column not in original.schema.columns:
            raise TableError(
                f"fact table {fact.name!r} has no column {date_column!r}"
            )
        sharded = ShardedTable(
            original.name, original.schema, date_column, width=width
        )
        if len(original):
            sharded.append_batch(original.columns())
        for index in original.indexes.values():
            sharded.create_index(index.columns, unique=index.unique)
        for position in original._domains:  # noqa: SLF001 — faithful rebuild
            sharded.track_domain(original.schema.columns[position])
        for observer in original.observers:
            sharded.attach_observer(observer)
        fact.table = sharded
        fact.partition = self
        self.fact = fact
        self.table = sharded
        self.date_column = date_column
        self.width = width
        self._date_position = sharded.schema.position(date_column)
        #: Filled by :class:`ParallelMaintenance` after each run; benches
        #: and tests read it for per-shard accounting.
        self.last_run: PartitionRunInfo | None = None

    # -- introspection -------------------------------------------------

    def shard_count(self) -> int:
        return len(self.table.shard_keys())

    def shard_sizes(self) -> dict[Any, int]:
        return self.table.shard_sizes()

    # -- change routing ------------------------------------------------

    def route_changes(self, changes: ChangeSet) -> list[ShardChanges]:
        """Split a change set by shard key, in shard scan order.

        Insertions may name dates with no existing shard — those shards
        are created when the changes are applied.  The routed slices
        partition the change set exactly: their sizes sum to
        ``changes.size()``.
        """
        if changes.schema != self.table.schema:
            raise TableError(
                f"change set for {changes.base_name!r} does not match the "
                f"schema of partitioned fact {self.fact.name!r}"
            )
        position = self._date_position
        key_of = self.table.shard_key_of
        ins: dict[Any, list[Row]] = {}
        dels: dict[Any, list[Row]] = {}
        for row in changes.insertions.scan():
            ins.setdefault(key_of(row[position]), []).append(row)
        for row in changes.deletions.scan():
            dels.setdefault(key_of(row[position]), []).append(row)
        keys = sorted(set(ins) | set(dels), key=_shard_sort_key)
        return [
            ShardChanges(
                key=key,
                insertions=tuple(ins.get(key, ())),
                deletions=tuple(dels.get(key, ())),
            )
            for key in keys
        ]

    # -- expiration ----------------------------------------------------

    def _shard_expired(self, key: Any, cutoff: Any) -> bool:
        if key is None:
            return False
        if self.width == 1:
            return key < cutoff
        return (key + 1) * self.width <= cutoff

    def expired_keys(self, cutoff: Any) -> list[Any]:
        """Shard keys holding only dates strictly before *cutoff*."""
        return [
            key for key in self.table.shard_keys()
            if self._shard_expired(key, cutoff)
        ]

    def expire_before(self, cutoff: Any) -> ChangeSet:
        """Build the deletion change set expiring all data before *cutoff*.

        Reads only the expired shards (never scans live data), and stamps
        the whole expiration as one lineage batch.  Propagating this change
        set maintains the summary tables exactly as the paper's expiration
        example (§2.1); applying it through :meth:`apply_changes` drops the
        expired segments wholesale.
        """
        changes = ChangeSet(self.fact.name, self.table.schema)
        doomed: list[Row] = []
        for key in self.expired_keys(cutoff):
            doomed.extend(self.table.shard_rows(key))
        if doomed:
            with changes.batch():
                changes.delete_many(doomed)
        return changes

    # -- applying changes ----------------------------------------------

    def apply_changes(self, changes: ChangeSet) -> dict[str, int]:
        """Apply a change set, dropping whole segments where possible.

        Semantics match :meth:`ChangeSet.apply_to` exactly — bag-style
        deletions, full validation before any mutation,
        :class:`~repro.errors.InconsistentDeltaError` on a deletion that
        matches no live row — but deletions only scan the shards they
        touch, and a shard whose every row is deleted (the expiration
        pattern) is dropped as one segment instead of row by row.
        Returns ``{"dropped_shards": ..., "deleted_rows": ...,
        "inserted_rows": ...}``.
        """
        table = self.table
        if changes.schema != table.schema:
            raise TableError(
                f"change set for {changes.base_name!r} does not match schema "
                f"of table {table.name!r}"
            )
        store = table.shard_store
        position = self._date_position
        key_of = table.shard_key_of
        wanted: dict[Any, Counter] = {}
        for row in changes.deletions.scan():
            key = key_of(row[position])
            bucket = wanted.get(key)
            if bucket is None:
                bucket = wanted[key] = Counter()
            bucket[row] += 1

        live_keys = set(store.shard_keys())
        drop_keys: list[Any] = []
        doomed_slots: list[int] = []
        for key in sorted(wanted, key=_shard_sort_key):
            requested = wanted[key]
            requested_rows = sum(requested.values())
            if key not in live_keys:
                missing = next(iter(requested))
                raise InconsistentDeltaError(
                    f"{requested_rows} deferred deletion(s) match no row in "
                    f"{table.name!r}; first missing row: {missing!r}"
                )
            shard_rows = store.shard_rows(key)
            charge_access("rows_scanned", len(shard_rows))
            live = Counter(shard_rows)
            overdrawn = [
                row for row, count in requested.items()
                if live.get(row, 0) < count
            ]
            if overdrawn:
                short = sum(
                    count - live.get(row, 0)
                    for row, count in requested.items()
                    if live.get(row, 0) < count
                )
                raise InconsistentDeltaError(
                    f"{short} deferred deletion(s) match no row in "
                    f"{table.name!r}; first missing row: {overdrawn[0]!r}"
                )
            if requested == live:
                drop_keys.append(key)
                continue
            remaining = requested_rows
            pending = dict(requested)
            for slot, row in store.enumerate_shard(key):
                if remaining == 0:
                    break
                count = pending.get(row, 0)
                if count:
                    pending[row] = count - 1
                    remaining -= 1
                    doomed_slots.append(slot)

        deleted = 0
        for key in drop_keys:
            deleted += table.drop_shard(key)
        if doomed_slots:
            deleted += table.delete_slots(doomed_slots)
        inserted = table.insert_many(changes.insertions.scan())
        if tracing.enabled() and drop_keys:
            obs_metrics.registry().counter(
                "partition.expired_segments"
            ).inc(len(drop_keys))
        return {
            "dropped_shards": len(drop_keys),
            "deleted_rows": deleted,
            "inserted_rows": inserted,
        }


def partition_fact(
    fact: FactTable, date_column: str = "date", width: int = 1
) -> PartitionedFactTable:
    """Partition *fact* by date (idempotent accessor: returns the existing
    partitioning if one is installed with matching parameters)."""
    existing = getattr(fact, "partition", None)
    if existing is not None:
        if existing.date_column != date_column or existing.width != width:
            raise TableError(
                f"fact table {fact.name!r} is already partitioned by "
                f"{existing.date_column!r} (width {existing.width})"
            )
        return existing
    return PartitionedFactTable(fact, date_column=date_column, width=width)


# ----------------------------------------------------------------------
# Delta merging (Reducer.merge over per-shard partials)
# ----------------------------------------------------------------------

def merge_summary_deltas(
    definition,
    policy: MinMaxPolicy,
    shard_rows: Sequence[Sequence[Row]],
    lineage=None,
) -> SummaryDelta:
    """Merge per-shard summary-delta rows into one delta for *definition*.

    Each input is one shard's delta table rows (any order of shards).
    Because every delta reducer has an identity finalise, stored delta
    values *are* mergeable partial states; per-group states combine with
    the same ``Reducer.merge`` the chunked aggregation uses, so the merged
    delta is equivalent to the serial single-pass delta.  Output rows are
    emitted in canonical nulls-first sorted order, making the merged table
    identical for any re-partitioning of the same change set.
    """
    specs = _delta_specs(definition, policy)
    reducers = [reducer for _name, _expr, reducer in specs]
    width = len(definition.group_by)
    n_aggs = len(reducers)
    merged: dict[tuple, list] = {}
    for rows in shard_rows:
        for row in rows:
            key = row[:width]
            states = row[width:]
            existing = merged.get(key)
            if existing is None:
                merged[key] = list(states)
            else:
                for a in range(n_aggs):
                    existing[a] = reducers[a].merge(existing[a], states[a])
    out_rows = sorted(
        (key + tuple(states) for key, states in merged.items()),
        key=_row_sort_key,
    )
    table = Table(
        f"sd_{definition.name}", delta_schema(definition, policy), out_rows
    )
    return SummaryDelta(definition, table, policy, lineage=lineage)


# ----------------------------------------------------------------------
# Shard-parallel propagation
# ----------------------------------------------------------------------

def _shard_task(payload: tuple) -> tuple[dict[str, list[Row]], dict[str, int]]:
    """Compute one shard's deltas for every lattice node (picklable unit).

    Runs in a pool worker (or inline on a single-worker fallback): rebuild
    the shard's change set and an identical lattice from the pruned
    definitions, then run the standard lattice propagation — the fused
    shared-scan sibling kernels recompile per process, so the shared-scan
    and shard-parallel speedups stack.  Returns each node's delta rows plus
    the access counters the shard's propagation charged.
    """
    from ..lattice.plan import propagate_lattice
    from ..lattice.vlattice import ViewLattice

    (definitions, size_hints, base_name, columns,
     ins_rows, del_rows, options) = payload
    changes = ChangeSet(base_name, Schema(columns))
    with changes.batch():
        if ins_rows:
            changes.insert_many(ins_rows)
        if del_rows:
            changes.delete_many(del_rows)
    lattice = ViewLattice.build(list(definitions), size_hints=dict(size_hints))
    with measuring() as access:
        before = access.snapshot()
        deltas = propagate_lattice(lattice, changes, options)
        used = access.since(before)
    return (
        {name: delta.table.rows() for name, delta in deltas.items()},
        {field: getattr(used, field) for field in ACCESS_FIELDS},
    )


@dataclass
class ShardRunStats:
    """Per-shard accounting from one parallel propagation."""

    key: Any
    change_rows: int
    delta_rows: int
    access: dict[str, int]

    @property
    def access_units(self) -> int:
        return sum(self.access.values())


@dataclass
class PartitionRunInfo:
    """What one shard-parallel propagation did (bench/test introspection)."""

    shards: list[ShardRunStats]
    workers: int
    pool: bool

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def change_rows(self) -> int:
        return sum(shard.change_rows for shard in self.shards)


def effective_shard_workers(
    options: PropagateOptions, n_shards: int
) -> tuple[int, bool]:
    """Worker count for the shard pool, and whether to fall back inline.

    Mirrors :func:`~repro.lattice.plan.effective_level_workers`: with no
    explicit ``shard_workers`` the pool is capped at the CPU count, and a
    single effective worker means the pool would only add fork/pickle
    overhead — the inline walk computes identical deltas through the same
    merge path.
    """
    requested = options.shard_workers or os.cpu_count() or 1
    workers = max(1, min(requested, n_shards))
    return workers, workers <= 1


class ParallelMaintenance:
    """Shard-parallel propagate driver for one partitioned fact table.

    ``propagate(lattice, changes, ...)`` routes the change set per shard,
    computes every shard's summary deltas on a process pool (inline when
    only one worker is effective or the work units fail to pickle), merges
    the per-shard deltas with :func:`merge_summary_deltas`, and returns one
    delta per lattice node — ready for the standard single refresh per
    view.  Per-shard access counters are charged back to the caller's
    collector under ``shard:<key>`` spans, so span subtotals still equal
    the :class:`~repro.relational.stats.AccessStats` totals.
    """

    def __init__(
        self,
        partitioned: PartitionedFactTable,
        options: PropagateOptions = PropagateOptions(),
    ) -> None:
        self.partitioned = partitioned
        self.options = options

    def _worker_options(self) -> PropagateOptions:
        """Options for in-worker propagation: no nested shard fan-out, no
        nested chunk pools; the fused shared-scan engine stays on."""
        return dataclasses.replace(
            self.options,
            partition=False,
            parallel=False,
            level_parallel=False,
            shard_workers=1,
        )

    def _payloads(
        self,
        lattice: "ViewLattice",
        changes: ChangeSet,
        shards: Sequence[ShardChanges],
    ) -> list[tuple]:
        definitions = [lattice.node(name).definition for name in lattice.order]
        pruned = _prune_definitions(definitions)
        size_hints = {
            name: float(count)
            for name, count in _lattice_size_hints(lattice).items()
        }
        columns = tuple(changes.schema.columns)
        options = self._worker_options()
        return [
            (
                tuple(pruned),
                tuple(size_hints.items()),
                changes.base_name,
                columns,
                shard.insertions,
                shard.deletions,
                options,
            )
            for shard in shards
        ]

    def propagate(
        self,
        lattice: "ViewLattice",
        changes: ChangeSet,
        clock: "BatchWindowClock | None" = None,
    ) -> dict[str, SummaryDelta]:
        from ..warehouse.batch import BatchWindowClock

        clock = clock or BatchWindowClock()
        shards = self.partitioned.route_changes(changes)
        if not shards:
            from ..lattice.plan import propagate_lattice

            return propagate_lattice(lattice, changes, self.options, clock)
        workers, inline = effective_shard_workers(self.options, len(shards))
        payloads = self._payloads(lattice, changes, shards)
        if not inline and not _picklable(payloads[0]):
            inline = True
        with tracing.span(
            "propagate", views=len(lattice.order), partition=True,
            shards=len(shards), workers=1 if inline else workers,
        ) as span:
            if inline:
                span.set_tag("partition_pool", "inline")
                with clock.online("propagate-shards", shards=len(shards)):
                    results = [_shard_task(payload) for payload in payloads]
            else:
                span.set_tag("partition_pool", "process")
                with clock.online("propagate-shards", shards=len(shards)):
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        results = list(pool.map(_shard_task, payloads))

            info = PartitionRunInfo(shards=[], workers=workers, pool=not inline)
            per_shard_rows: list[dict[str, list[Row]]] = []
            for shard, (delta_rows, access) in zip(shards, results):
                per_shard_rows.append(delta_rows)
                with tracing.span(
                    f"shard:{shard.key}", change_rows=shard.change_rows,
                ) as shard_span:
                    if not inline:
                        # Pool workers charged their own (per-process)
                        # collectors; re-charge here so the parent's ledger
                        # and span totals see the shard's work.
                        for field in ACCESS_FIELDS:
                            amount = access.get(field, 0)
                            if amount:
                                charge_access(field, amount)
                                shard_span.add(field, amount)
                info.shards.append(ShardRunStats(
                    key=shard.key,
                    change_rows=shard.change_rows,
                    delta_rows=sum(len(rows) for rows in delta_rows.values()),
                    access=dict(access),
                ))
            if tracing.enabled():
                registry = obs_metrics.registry()
                registry.counter("partition.runs").inc()
                registry.counter("partition.shards").inc(len(shards))
                for shard in shards:
                    registry.histogram("partition.shard_rows").observe(
                        shard.change_rows
                    )

            lineage = changes.lineage.snapshot()
            deltas: dict[str, SummaryDelta] = {}
            merged_rows = 0
            for name in lattice.order:
                definition = lattice.node(name).definition
                with clock.online(
                    f"propagate:{name}", node=name, kind="merge",
                ), tracing.span("node:" + name) as node_span:
                    delta = merge_summary_deltas(
                        definition,
                        self.options.policy,
                        [rows.get(name, ()) for rows in per_shard_rows],
                        lineage=lineage,
                    )
                    node_span.add("delta_rows", len(delta.table))
                    deltas[name] = delta
                    merged_rows += len(delta.table)
            if tracing.enabled():
                obs_metrics.registry().counter(
                    "partition.merged_delta_rows"
                ).inc(merged_rows)
            span.add("merged_delta_rows", merged_rows)
        self.partitioned.last_run = info
        return deltas


def propagate_partitioned(
    lattice: "ViewLattice",
    partitioned: PartitionedFactTable,
    changes: ChangeSet,
    options: PropagateOptions = PropagateOptions(),
    clock: "BatchWindowClock | None" = None,
) -> dict[str, SummaryDelta]:
    """Shard-parallel twin of :func:`~repro.lattice.plan.propagate_lattice`."""
    return ParallelMaintenance(partitioned, options).propagate(
        lattice, changes, clock
    )


def _prune_definitions(definitions: Sequence) -> list:
    """Re-root definitions on data-free fact tables for pickling.

    Propagation never reads ``fact.table`` (only the change set and the
    dimension tables), so shard work units ship the fact *structure* —
    name, columns, foreign keys with their full dimension tables — without
    the sharded fact data.  Definitions sharing a fact keep sharing the
    pruned one, preserving the identity checks downstream.
    """
    slim_facts: dict[int, FactTable] = {}
    pruned = []
    for definition in definitions:
        fact = definition.fact
        slim = slim_facts.get(id(fact))
        if slim is None:
            slim = FactTable(
                fact.name, list(fact.columns), list(fact.foreign_keys)
            )
            slim_facts[id(fact)] = slim
        pruned.append(dataclasses.replace(definition, fact=slim))
    return pruned


def _lattice_size_hints(lattice: "ViewLattice") -> dict[str, int]:
    """Size hints that rebuild an identical lattice in a worker process."""
    hints: dict[str, int] = {}
    for name in lattice.order:
        node = lattice.node(name)
        hints[name] = int(10 ** len(node.definition.group_by))
    return hints


def _picklable(payload: tuple) -> bool:
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True
