"""Warehouse layer: star schema, deferred changes, batch-window accounting."""

from .batch import BatchReport, BatchWindowClock, Phase
from .catalog import Warehouse
from .changes import ChangeSet
from .dimension import DimensionHierarchy, DimensionTable
from .fact import FactTable, ForeignKey
from .nightly import NightlyResult, run_nightly_maintenance

__all__ = [
    "BatchReport",
    "BatchWindowClock",
    "ChangeSet",
    "DimensionHierarchy",
    "DimensionTable",
    "FactTable",
    "ForeignKey",
    "NightlyResult",
    "Phase",
    "Warehouse",
    "run_nightly_maintenance",
]
