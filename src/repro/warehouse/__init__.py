"""Warehouse layer: star schema, deferred changes, batch-window accounting."""

from .batch import BatchReport, BatchWindowClock, Phase
from .catalog import Warehouse
from .changes import ChangeSet
from .dimension import DimensionHierarchy, DimensionTable
from .fact import FactTable, ForeignKey
from .health import (
    AuditReport,
    ViewAuditResult,
    ViewStatus,
    audit_warehouse,
    export_status_gauges,
    format_status,
    inject_corruption,
    warehouse_status,
)
from .nightly import NightlyResult, run_nightly_maintenance

__all__ = [
    "AuditReport",
    "BatchReport",
    "BatchWindowClock",
    "ChangeSet",
    "DimensionHierarchy",
    "DimensionTable",
    "FactTable",
    "ForeignKey",
    "NightlyResult",
    "Phase",
    "ViewAuditResult",
    "ViewStatus",
    "Warehouse",
    "audit_warehouse",
    "export_status_gauges",
    "format_status",
    "inject_corruption",
    "run_nightly_maintenance",
    "warehouse_status",
]
