"""Batch-window accounting: how long is the warehouse offline?

The paper's central operational claim is that splitting maintenance into
*propagate* (runs while the warehouse stays readable) and *refresh* (runs
inside the nightly batch window, warehouse offline) shrinks the window.
This module provides the stopwatch used by the maintenance drivers and the
benchmarks: phases are recorded with wall-clock durations and classified as
online or offline, and a :class:`BatchReport` summarises the window.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Phase:
    """One timed maintenance phase."""

    name: str
    seconds: float
    offline: bool


@dataclass
class BatchReport:
    """Accumulated timing for one maintenance run.

    ``offline_seconds`` is the simulated batch window (refresh and base-table
    update); ``online_seconds`` is work overlapped with query service
    (propagate).
    """

    phases: list[Phase] = field(default_factory=list)

    @property
    def online_seconds(self) -> float:
        return sum(p.seconds for p in self.phases if not p.offline)

    @property
    def offline_seconds(self) -> float:
        return sum(p.seconds for p in self.phases if p.offline)

    @property
    def total_seconds(self) -> float:
        return self.online_seconds + self.offline_seconds

    def seconds_for(self, name: str) -> float:
        """Total seconds across phases called *name*."""
        return sum(p.seconds for p in self.phases if p.name == name)

    def merge(self, other: "BatchReport") -> "BatchReport":
        """Return a report combining both runs' phases."""
        return BatchReport(phases=self.phases + other.phases)

    def summary(self) -> str:
        """A one-line human-readable summary."""
        return (
            f"online {self.online_seconds:.3f}s, "
            f"offline (batch window) {self.offline_seconds:.3f}s, "
            f"total {self.total_seconds:.3f}s"
        )


class BatchWindowClock:
    """Records named phases into a :class:`BatchReport`.

    Usage::

        clock = BatchWindowClock()
        with clock.online("propagate"):
            ...   # summary-delta computation; warehouse stays readable
        with clock.offline("refresh"):
            ...   # summary tables locked
        report = clock.report
    """

    def __init__(self) -> None:
        self.report = BatchReport()

    @contextmanager
    def _timed(self, name: str, offline: bool) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.report.phases.append(Phase(name, elapsed, offline))

    def online(self, name: str) -> Iterator[None]:
        """Time an online phase (warehouse available to readers)."""
        return self._timed(name, offline=False)

    def offline(self, name: str) -> Iterator[None]:
        """Time an offline phase (inside the batch window)."""
        return self._timed(name, offline=True)
