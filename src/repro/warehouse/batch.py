"""Batch-window accounting: how long is the warehouse offline?

The paper's central operational claim is that splitting maintenance into
*propagate* (runs while the warehouse stays readable) and *refresh* (runs
inside the nightly batch window, warehouse offline) shrinks the window.
This module provides the stopwatch used by the maintenance drivers and the
benchmarks: phases are recorded with wall-clock durations and classified as
online or offline, and a :class:`BatchReport` summarises the window.

The clock is built on the observability layer
(:mod:`repro.obs.tracing`): every phase opens a span tagged
``window="online"`` or ``window="offline"``, so whenever a trace recorder
is active the batch-window split can be *re-derived from span tags alone*
(:meth:`BatchReport.from_spans`) and must agree with the clock's own
report.  With tracing off, phases are timed directly and nothing else is
recorded.

Phases may nest (e.g. an offline ``apply-base`` inside a broader offline
``batch`` phase); nested phases are recorded with their nesting ``depth``
and only outermost (depth-0) phases contribute to the online/offline
totals, so the window is never double-counted.  Re-entering a phase name
that is still open raises — overlapping same-name phases are always an
instrumentation bug, and silently accepting them would corrupt the report.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import MaintenanceError
from ..obs import tracing


@dataclass(frozen=True)
class Phase:
    """One timed maintenance phase.

    ``depth`` is the phase-nesting depth at the time the phase opened: 0
    for outermost phases (the only ones counted into the window totals),
    1 for a phase opened inside another phase, and so on.
    """

    name: str
    seconds: float
    offline: bool
    depth: int = 0


@dataclass
class BatchReport:
    """Accumulated timing for one maintenance run.

    ``offline_seconds`` is the simulated batch window (refresh and base-table
    update); ``online_seconds`` is work overlapped with query service
    (propagate).  Only outermost phases (``depth == 0``) contribute, so a
    phase nested inside another never double-counts the window.
    """

    phases: list[Phase] = field(default_factory=list)

    @property
    def online_seconds(self) -> float:
        return sum(p.seconds for p in self.phases if not p.offline and p.depth == 0)

    @property
    def offline_seconds(self) -> float:
        return sum(p.seconds for p in self.phases if p.offline and p.depth == 0)

    @property
    def total_seconds(self) -> float:
        return self.online_seconds + self.offline_seconds

    def seconds_for(self, name: str) -> float:
        """Total seconds across phases called *name* (any depth)."""
        return sum(p.seconds for p in self.phases if p.name == name)

    def merge(self, other: "BatchReport") -> "BatchReport":
        """Return a report combining both runs' phases."""
        return BatchReport(phases=self.phases + other.phases)

    def summary(self) -> str:
        """A one-line human-readable summary."""
        return (
            f"online {self.online_seconds:.3f}s, "
            f"offline (batch window) {self.offline_seconds:.3f}s, "
            f"total {self.total_seconds:.3f}s"
        )

    @classmethod
    def from_spans(cls, root: "tracing.Span") -> "BatchReport":
        """Rebuild a report from a span tree using only ``window`` tags.

        A span tagged ``window`` becomes a phase; its depth is the number
        of window-tagged ancestors.  This is the observability-layer view
        of the batch window: when the clock ran under an active trace
        recorder, the result matches the clock's own report.
        """
        phases: list[Phase] = []

        def walk(span: "tracing.Span", depth: int) -> None:
            window = span.tags.get("window")
            here = depth
            if window is not None:
                phases.append(Phase(
                    name=span.tags.get("phase", span.name),
                    seconds=span.seconds,
                    offline=(window == "offline"),
                    depth=depth,
                ))
                here = depth + 1
            for child in span.children:
                walk(child, here)

        walk(root, 0)
        return cls(phases=phases)


class BatchWindowClock:
    """Records named phases into a :class:`BatchReport`.

    Usage::

        clock = BatchWindowClock()
        with clock.online("propagate"):
            ...   # summary-delta computation; warehouse stays readable
        with clock.offline("refresh"):
            ...   # summary tables locked
        report = clock.report

    Extra keyword arguments become tags on the phase's span (visible in
    traces, ignored otherwise), and ``parent=`` forwards an explicit parent
    span — needed when phases run on executor worker threads, whose span
    stacks are independent of the dispatching thread's.

    Thread-safe: concurrent phases from different threads record
    independently; each thread's nesting depth is tracked separately.
    Re-entering a phase *name* that is currently open (in any thread)
    raises :class:`~repro.errors.MaintenanceError`.
    """

    def __init__(self) -> None:
        self.report = BatchReport()
        self._lock = threading.Lock()
        self._open_names: set[str] = set()
        self._local = threading.local()

    def _depth_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def _timed(self, name: str, offline: bool,
               parent: "tracing.Span | None" = None,
               **tags: Any) -> Iterator[None]:
        with self._lock:
            if name in self._open_names:
                raise MaintenanceError(
                    f"batch phase {name!r} re-entered while still open"
                )
            self._open_names.add(name)
        stack = self._depth_stack()
        depth = len(stack)
        stack.append(name)
        window = "offline" if offline else "online"
        started = time.perf_counter()
        span_cm = tracing.span(name, parent=parent, window=window, **tags)
        span = span_cm.__enter__()
        try:
            yield
        finally:
            span_cm.__exit__(None, None, None)
            # Use the span's own clock when a real span was recorded, so the
            # report and the span tree agree exactly.
            if span is tracing.NOOP_SPAN:
                elapsed = time.perf_counter() - started
            else:
                elapsed = span.seconds
            stack.pop()
            with self._lock:
                self._open_names.discard(name)
                self.report.phases.append(Phase(name, elapsed, offline, depth))

    def online(self, name: str, parent: "tracing.Span | None" = None,
               **tags: Any) -> Iterator[None]:
        """Time an online phase (warehouse available to readers)."""
        return self._timed(name, offline=False, parent=parent, **tags)

    def offline(self, name: str, parent: "tracing.Span | None" = None,
                **tags: Any) -> Iterator[None]:
        """Time an offline phase (inside the batch window)."""
        return self._timed(name, offline=True, parent=parent, **tags)
