"""The nightly maintenance driver: one call to maintain a whole warehouse.

This is the operational entry point a deployment would schedule: for every
fact table with deferred changes, maintain all its summary tables through
the summary-delta lattice, apply the base changes, clear the change sets,
and report the batch-window split.  Fact tables without pending changes
are skipped entirely — their summary tables need no work.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

from ..errors import MaintenanceError
from ..obs import tracing
from .batch import BatchReport, BatchWindowClock
from .catalog import Warehouse


@dataclass
class NightlyResult:
    """Outcome of one warehouse-wide nightly run."""

    #: Per-fact-table maintenance results (only facts that had changes).
    per_fact: dict[str, object] = field(default_factory=dict)
    report: BatchReport = field(default_factory=BatchReport)

    @property
    def facts_maintained(self) -> list[str]:
        return sorted(self.per_fact)

    @property
    def views_maintained(self) -> int:
        return sum(len(result.stats) for result in self.per_fact.values())


def run_nightly_maintenance(
    warehouse: Warehouse,
    verify: bool | str = False,
    **maintain_kwargs,
) -> NightlyResult:
    """Maintain every summary table of every changed fact table.

    Keyword arguments are forwarded to
    :func:`repro.lattice.plan.maintain_lattice` (options, variant,
    use_lattice, auxiliary, ...).  With ``verify=True`` the run finishes by
    checking every summary table against recomputation — expensive, but the
    definitive post-deployment smoke test.  ``verify="certificate"`` checks
    through :meth:`Warehouse.verify_certificates` instead: one recompute
    digest pass per view, no row-by-row table comparison.
    """
    from ..core.propagate import PropagateOptions
    from ..core.refresh import RefreshVariant
    from ..lattice.plan import maintain_lattice, maintenance_record
    from ..obs.ledger import active_ledger, suspended_ledger
    from ..relational.stats import measuring

    clock: BatchWindowClock = maintain_kwargs.pop("clock", None) or BatchWindowClock()
    result = NightlyResult(report=clock.report)

    ledger = active_ledger()
    change_counts = {"insertions": 0, "deletions": 0}
    # Warehouse-wide manifest high-water marks, so the single "nightly"
    # record carries every manifest the run published.
    lineage_marks = {
        name: len(view.lineage) for name, view in warehouse.views.items()
    }
    with ExitStack() as scope:
        if ledger is not None:
            # The warehouse-wide record subsumes the per-fact ones, so
            # suspend the ledger around the per-fact calls — one nightly
            # run appends exactly one "nightly" record.
            scope.enter_context(suspended_ledger())
            access = scope.enter_context(measuring())
            access_before = access.snapshot()
        with tracing.span("nightly", facts=len(warehouse.facts)) as nightly_span:
            for fact_name in sorted(warehouse.facts):
                changes = warehouse.pending_changes(fact_name)
                if changes.is_empty():
                    continue
                change_counts["insertions"] += len(changes.insertions)
                change_counts["deletions"] += len(changes.deletions)
                with tracing.span("fact:" + fact_name) as fact_span:
                    fact_span.add("changes", changes.size())
                    views = warehouse.views_over(fact_name)
                    if views:
                        result.per_fact[fact_name] = maintain_lattice(
                            views, changes, clock=clock, **maintain_kwargs
                        )
                    else:
                        with clock.offline("apply-base", fact=fact_name):
                            changes.apply_to(warehouse.facts[fact_name].table)
                    warehouse.discard_pending(fact_name)
            nightly_span.add("facts_maintained", len(result.per_fact))
        maintained_views = [
            name
            for fact_result in result.per_fact.values()
            for name in fact_result.stats
        ]
        if ledger is not None:
            all_stats = {
                name: stats
                for fact_result in result.per_fact.values()
                for name, stats in fact_result.stats.items()
            }
            stamped = ledger.append(maintenance_record(
                kind="nightly",
                options=maintain_kwargs.get("options", PropagateOptions()),
                use_lattice=maintain_kwargs.get("use_lattice", True),
                variant=maintain_kwargs.get("variant", RefreshVariant.CURSOR),
                mode=maintain_kwargs.get("mode"),
                phases=clock.report.phases,
                access=access.since(access_before),
                stats=all_stats,
                change_counts=change_counts,
                estimate=None,
                freshness={
                    name: warehouse.views[name].freshness.as_dict()
                    for name in maintained_views
                },
                lineage={
                    name: manifest.as_dict()
                    for name in maintained_views
                    for manifest in warehouse.views[name].lineage.manifests_since(
                        lineage_marks[name]
                    )
                },
            ))
            run_id = stamped["run_id"]
        else:
            run_id = None
        for name in maintained_views:
            warehouse.views[name].freshness.note_run(run_id, "nightly")

    if verify == "certificate":
        stale = [
            name
            for name, consistent in warehouse.verify_certificates().items()
            if not consistent
        ]
        if stale:
            raise MaintenanceError(
                f"nightly certificate verification failed for views: {stale}"
            )
    elif verify:
        stale = [
            name for name, consistent in warehouse.verify_views().items()
            if not consistent
        ]
        if stale:
            raise MaintenanceError(
                f"nightly verification failed for views: {stale}"
            )
    return result
