"""Fact tables and their foreign-key links to dimension tables.

In a star schema (paper, Section 2) the fact table holds one tuple per
event (each item sold in a transaction) and joins to each dimension table
along a foreign key.  Because the join is along the dimension's primary key,
"each tuple in the fact table is guaranteed to join with one and only one
tuple from each dimension table" (Section 3.3) — the property that makes
join push-down and lattice-friendly view rewriting sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..errors import SchemaError, TableError
from ..relational.operators import hash_join
from ..relational.table import Table
from .dimension import DimensionTable


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key link: ``fact.column`` references ``dimension.key``."""

    column: str
    dimension: DimensionTable

    def __repr__(self) -> str:
        return f"ForeignKey({self.column} -> {self.dimension.name}.{self.dimension.key})"


class FactTable:
    """A fact table plus its declared foreign keys.

    Parameters
    ----------
    name:
        Table name (e.g. ``"pos"``).
    columns:
        Column names.
    foreign_keys:
        ``ForeignKey`` declarations; each ``column`` must exist in *columns*.
    rows:
        Initial rows (duplicates allowed — the fact table is a bag).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        foreign_keys: Sequence[ForeignKey] = (),
        rows: Iterable[Sequence[Any]] = (),
    ):
        self.name = name
        self.table = Table(name, columns, rows)
        self.foreign_keys = tuple(foreign_keys)
        seen_dimensions: set[str] = set()
        for fk in self.foreign_keys:
            if fk.column not in self.table.schema:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {name!r}"
                )
            if fk.dimension.name in seen_dimensions:
                raise SchemaError(
                    f"fact table {name!r} declares dimension "
                    f"{fk.dimension.name!r} twice"
                )
            seen_dimensions.add(fk.dimension.name)

    def __repr__(self) -> str:
        return f"FactTable({self.name!r}, {len(self.table)} rows)"

    @property
    def columns(self) -> tuple[str, ...]:
        return self.table.schema.columns

    def dimension(self, name: str) -> DimensionTable:
        """Return the linked dimension table called *name*."""
        for fk in self.foreign_keys:
            if fk.dimension.name == name:
                return fk.dimension
        raise TableError(f"fact table {self.name!r} has no dimension {name!r}")

    def foreign_key_for(self, dimension_name: str) -> ForeignKey:
        """Return the foreign key linking to *dimension_name*."""
        for fk in self.foreign_keys:
            if fk.dimension.name == dimension_name:
                return fk
        raise TableError(
            f"fact table {self.name!r} has no foreign key to {dimension_name!r}"
        )

    def join_dimensions(self, source: Table, dimension_names: Sequence[str]) -> Table:
        """Join *source* (fact-shaped rows) with the named dimension tables.

        Used when materialising views and when building prepare-views from
        change sets: the change tables share the fact table's schema, so the
        same foreign keys apply.
        """
        result = source
        for name in dimension_names:
            fk = self.foreign_key_for(name)
            result = hash_join(
                result,
                fk.dimension.table,
                on=[(fk.column, fk.dimension.key)],
            )
        return result

    def validate_foreign_keys(self) -> None:
        """Check every fact row references an existing dimension row."""
        for fk in self.foreign_keys:
            position = self.table.schema.position(fk.column)
            index = fk.dimension.table.index_on([fk.dimension.key])
            for row in self.table.scan():
                if not index.lookup((row[position],)):
                    raise TableError(
                        f"{self.name}.{fk.column} = {row[position]!r} has no "
                        f"match in {fk.dimension.name}"
                    )
