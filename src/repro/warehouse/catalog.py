"""The warehouse catalog: base tables, summary tables, deferred changes.

:class:`Warehouse` is the top-level stateful object an application works
with.  It owns the fact tables, dimension tables, materialised summary
tables, and per-fact-table deferred :class:`~repro.warehouse.changes.ChangeSet`
objects.  Maintenance drivers (:mod:`repro.core.maintenance` for one view,
:mod:`repro.lattice.plan` for a lattice of views) operate on a warehouse.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import DefinitionError, TableError
from ..views.definition import SummaryViewDefinition
from ..views.materialize import MaterializedView
from .changes import ChangeSet
from .dimension import DimensionTable
from .fact import FactTable


class Warehouse:
    """A star-schema warehouse with materialised summary tables."""

    def __init__(self) -> None:
        self.facts: dict[str, FactTable] = {}
        self.dimensions: dict[str, DimensionTable] = {}
        self.views: dict[str, MaterializedView] = {}
        self._pending: dict[str, ChangeSet] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_dimension(self, dimension: DimensionTable) -> DimensionTable:
        """Register a dimension table."""
        if dimension.name in self.dimensions:
            raise TableError(f"dimension {dimension.name!r} already registered")
        self.dimensions[dimension.name] = dimension
        return dimension

    def add_fact(self, fact: FactTable) -> FactTable:
        """Register a fact table (its dimensions are registered implicitly)."""
        if fact.name in self.facts:
            raise TableError(f"fact table {fact.name!r} already registered")
        self.facts[fact.name] = fact
        for fk in fact.foreign_keys:
            if fk.dimension.name not in self.dimensions:
                self.dimensions[fk.dimension.name] = fk.dimension
        return fact

    def partition_fact(
        self, fact_name: str, date_column: str = "date", width: int = 1
    ):
        """Date-partition a registered fact table (idempotent).

        Re-stores the fact as per-date-range shards
        (:class:`~repro.warehouse.partition.PartitionedFactTable`); nightly
        maintenance then takes the shard-parallel path whenever
        ``REPRO_PARTITION`` (or an explicit ``PropagateOptions.partition``)
        turns it on, and expiration drops whole expired segments.
        """
        from .partition import partition_fact

        if fact_name not in self.facts:
            raise TableError(f"no fact table named {fact_name!r}")
        return partition_fact(
            self.facts[fact_name], date_column=date_column, width=width
        )

    def define_summary_table(
        self, definition: SummaryViewDefinition
    ) -> MaterializedView:
        """Resolve, materialise, index, and register a summary table."""
        if definition.name in self.views:
            raise DefinitionError(
                f"summary table {definition.name!r} already defined"
            )
        if definition.fact.name not in self.facts:
            raise DefinitionError(
                f"view {definition.name!r} references unregistered fact table "
                f"{definition.fact.name!r}"
            )
        view = MaterializedView.build(definition)
        self.views[definition.name] = view
        return view

    def view(self, name: str) -> MaterializedView:
        """Look up a summary table by name."""
        try:
            return self.views[name]
        except KeyError:
            raise DefinitionError(f"no summary table named {name!r}") from None

    # ------------------------------------------------------------------
    # Deferred changes
    # ------------------------------------------------------------------

    def pending_changes(self, fact_name: str) -> ChangeSet:
        """The deferred change set for *fact_name* (created on demand)."""
        if fact_name not in self.facts:
            raise TableError(f"no fact table named {fact_name!r}")
        changes = self._pending.get(fact_name)
        if changes is None:
            changes = ChangeSet(fact_name, self.facts[fact_name].table.schema)
            self._pending[fact_name] = changes
        return changes

    def stage_insertions(self, fact_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Defer insertions into *fact_name*."""
        return self.pending_changes(fact_name).insert_many(rows)

    def stage_deletions(self, fact_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Defer deletions from *fact_name*."""
        return self.pending_changes(fact_name).delete_many(rows)

    def stage_changes(self, fact_name: str, changes: ChangeSet) -> int:
        """Merge a pre-built change set into the pending one, keeping the
        original batch ids and ingest timestamps (re-staging row by row
        would restamp every tuple and zero out its accumulated lag)."""
        pending = self.pending_changes(fact_name)
        pending.merge(changes)
        return changes.size()

    def apply_pending_to_base(self, fact_name: str) -> None:
        """Apply the deferred changes to the base fact table (keeping the
        change set available for view maintenance)."""
        changes = self.pending_changes(fact_name)
        changes.apply_to(self.facts[fact_name].table)

    def discard_pending(self, fact_name: str) -> None:
        """Drop the deferred change set after maintenance completes."""
        self.pending_changes(fact_name).clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def views_over(self, fact_name: str) -> list[MaterializedView]:
        """All summary tables defined over *fact_name*."""
        return [
            view for view in self.views.values()
            if view.definition.fact.name == fact_name
        ]

    def freshness(self) -> dict[str, Any]:
        """Per-view freshness trackers, keyed by view name."""
        return {name: view.freshness for name, view in self.views.items()}

    def pending_counts(self, fact_name: str) -> dict[str, int]:
        """Deferred change counts for *fact_name*: insertions, deletions."""
        changes = self.pending_changes(fact_name)
        return {
            "insertions": len(changes.insertions),
            "deletions": len(changes.deletions),
        }

    def verify_certificates(self) -> dict[str, bool]:
        """Certificate-based consistency check of every summary table.

        For each view the *stored* certificate (re-digested from the
        current rows) is compared against the *expected* certificate of
        a from-scratch recomputation — ``certificate == recompute``
        certifies the view without a row-by-row table comparison — and,
        when incremental certificates are enabled, the *maintained*
        certificate must also equal the stored one (drift means the
        table was mutated outside maintenance).  Returns
        ``{view_name: consistent}``; raises nothing.
        """
        from ..obs.audit import rows_certificate
        from ..views.materialize import compute_rows

        results: dict[str, bool] = {}
        for name, view in self.views.items():
            stored = rows_certificate(view.table.rows())
            expected = rows_certificate(compute_rows(view.definition).rows())
            consistent = stored == expected
            if view.certificate is not None:
                consistent = consistent and view.certificate.value == stored
            results[name] = consistent
        return results

    def verify_views(self) -> dict[str, bool]:
        """Check every summary table against from-scratch recomputation.

        An operational safety net: run it after maintenance (or after a
        crash) to confirm no view has drifted from its definition.  Returns
        ``{view_name: consistent}``; raises nothing.
        """
        from ..views.materialize import compute_rows

        results: dict[str, bool] = {}
        for name, view in self.views.items():
            expected = compute_rows(view.definition).sorted_rows()
            results[name] = view.table.sorted_rows() == expected
        return results

    def assert_views_consistent(self) -> None:
        """Like :meth:`verify_views` but raises on the first stale view."""
        from ..errors import MaintenanceError

        for name, consistent in self.verify_views().items():
            if not consistent:
                raise MaintenanceError(
                    f"summary table {name!r} does not match recomputation "
                    "from its base data"
                )

    def __repr__(self) -> str:
        return (
            f"Warehouse({len(self.facts)} facts, {len(self.dimensions)} "
            f"dimensions, {len(self.views)} summary tables)"
        )
