"""Dimension tables and dimension hierarchies.

A *dimension hierarchy* (paper, Section 2) is a chain of functional
dependencies among the attributes of a dimension table: in the running
example ``storeID → city → region`` and ``itemID → category``.  Hierarchies
matter twice in the paper:

* grouping by an attribute yields the same groups as grouping by that
  attribute plus all attributes it determines (Section 5.2's
  lattice-friendly rewriting relies on this);
* each hierarchy contributes a small lattice of grouping granularities whose
  direct product with the fact-table lattice gives the combined cube lattice
  of Figure 5 (Section 3.3).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import SchemaError, TableError
from ..relational.table import Table


class DimensionHierarchy:
    """A linear functional-dependency chain ``levels[0] → levels[1] → ...``.

    ``levels[0]`` is the dimension key (finest granularity); every level
    functionally determines all later (coarser) levels.  The paper's
    hierarchies are linear chains, which is all we model.
    """

    def __init__(self, name: str, levels: Sequence[str]):
        if len(levels) < 1:
            raise SchemaError("a hierarchy needs at least its key level")
        if len(set(levels)) != len(levels):
            raise SchemaError(f"hierarchy {name!r} has duplicate levels: {levels}")
        self.name = name
        self.levels = tuple(levels)

    def __repr__(self) -> str:
        return f"DimensionHierarchy({self.name!r}, {' -> '.join(self.levels)})"

    @property
    def key(self) -> str:
        """The finest level — the dimension table's key attribute."""
        return self.levels[0]

    def __contains__(self, attribute: object) -> bool:
        return attribute in self.levels

    def depth_of(self, attribute: str) -> int:
        """Position of *attribute* in the chain (0 = key = finest)."""
        try:
            return self.levels.index(attribute)
        except ValueError:
            raise SchemaError(
                f"{attribute!r} is not a level of hierarchy {self.name!r}"
            ) from None

    def determines(self, attribute: str) -> tuple[str, ...]:
        """Attributes functionally determined by *attribute* (its coarser
        descendants in the chain, excluding itself)."""
        return self.levels[self.depth_of(attribute) + 1:]

    def determines_transitively(self, attribute: str, other: str) -> bool:
        """True when ``attribute → other`` holds in this hierarchy."""
        if attribute not in self.levels or other not in self.levels:
            return False
        return self.depth_of(attribute) <= self.depth_of(other)

    def grouping_choices(self) -> tuple[tuple[str, ...], ...]:
        """The grouping granularities this dimension offers, finest first.

        For ``storeID → city → region`` these are ``(storeID,)``,
        ``(city,)``, ``(region,)``, and ``()`` (not grouped) — the nodes of
        the hierarchy's own lattice (Section 3.3).
        """
        return tuple((level,) for level in self.levels) + ((),)


class DimensionTable:
    """A dimension table with a primary key and optional hierarchy.

    Parameters
    ----------
    name:
        Table name (e.g. ``"stores"``).
    columns:
        Column names; the first is taken as the primary key unless *key* is
        given.
    rows:
        Initial rows.
    hierarchy:
        The FD chain over (a subset of) this table's columns.  When omitted,
        a trivial single-level hierarchy over the key is assumed.
    key:
        Primary-key column name.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        hierarchy: DimensionHierarchy | None = None,
        key: str | None = None,
    ):
        self.name = name
        self.table = Table(name, columns, rows)
        self.key = key or columns[0]
        if self.key not in self.table.schema:
            raise SchemaError(f"key {self.key!r} is not a column of {name!r}")
        self.hierarchy = hierarchy or DimensionHierarchy(name, [self.key])
        for level in self.hierarchy.levels:
            if level not in self.table.schema:
                raise SchemaError(
                    f"hierarchy level {level!r} is not a column of {name!r}"
                )
        if self.hierarchy.key != self.key:
            raise SchemaError(
                f"hierarchy of {name!r} must start at the key {self.key!r}, "
                f"got {self.hierarchy.key!r}"
            )
        self.table.create_index([self.key], unique=True)
        # Dimension tables are built row-at-a-time, which leaves columnar
        # backings holding plain lists; promote the numeric columns to
        # typed arrays now that the build is complete.
        self.table.promote_columns()

    def __repr__(self) -> str:
        return f"DimensionTable({self.name!r}, {len(self.table)} rows)"

    @property
    def columns(self) -> tuple[str, ...]:
        return self.table.schema.columns

    def attributes(self) -> tuple[str, ...]:
        """Non-key columns (the attributes views may group by or aggregate)."""
        return tuple(c for c in self.columns if c != self.key)

    def lookup(self, key_value: Any) -> tuple[Any, ...] | None:
        """Return the row for *key_value*, or ``None``."""
        index = self.table.index_on([self.key])
        slot = index.lookup_one((key_value,))
        if slot is None:
            return None
        return self.table.row_at(slot)

    def validate_hierarchy(self) -> None:
        """Check that the declared FD chain actually holds in the data.

        Raises :class:`~repro.errors.TableError` on the first violation.
        Workload generators always produce valid hierarchies; this is a
        safety net for hand-built data.
        """
        levels = self.hierarchy.levels
        positions = self.table.schema.positions(levels)
        for upper_idx in range(len(levels) - 1):
            mapping: dict[Any, Any] = {}
            up_pos, down_pos = positions[upper_idx], positions[upper_idx + 1]
            for row in self.table.scan():
                parent, child = row[up_pos], row[down_pos]
                if parent in mapping and mapping[parent] != child:
                    raise TableError(
                        f"FD {levels[upper_idx]} -> {levels[upper_idx + 1]} "
                        f"violated in {self.name!r}: {parent!r} maps to both "
                        f"{mapping[parent]!r} and {child!r}"
                    )
                mapping[parent] = child
