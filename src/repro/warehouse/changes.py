"""Deferred change sets: the ``pos_ins`` / ``pos_del`` tables.

Warehouses defer source changes during the day and apply them in a nightly
batch (paper, Sections 1–2).  A :class:`ChangeSet` holds the deferred
insertions and deletions for one base table, in tables sharing that base
table's schema.  The maintenance algorithms read the change set during
*propagate*; :meth:`ChangeSet.apply_to` applies it to the base table (before
*refresh*, as the paper assumes, so MIN/MAX recomputation sees updated base
data).

Deletion semantics are bag-style: each deletion row removes exactly one
matching occurrence from the base table.  ``apply_to`` is transactional:
every deferred deletion is validated against the base table *before* any
mutation, so an inconsistent batch raises
:class:`~repro.errors.InconsistentDeltaError` with the base table untouched.

Every enqueue call is stamped as a **lineage batch**: a monotonically
assigned batch id plus ingest timestamp drawn from the process-wide
:func:`~repro.obs.lineage.lineage_clock`, accumulated in
:attr:`ChangeSet.lineage`.  Propagate snapshots the lineage onto the
summary deltas it computes, and the refresh paths pin it — with per-batch
ingest→publish lag — into the epoch manifests of every view the batch
reaches (:mod:`repro.obs.lineage`).  :meth:`batch` groups several enqueues
under one batch id (a micro-batch); :meth:`merge` composes two change
sets' rows *and* lineages; :meth:`clear` resets both.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Sequence

from ..errors import InconsistentDeltaError, TableError
from ..obs.lineage import BatchLineage, lineage_clock
from ..relational.schema import Schema
from ..relational.table import Row, Table


class ChangeSet:
    """Deferred insertions and deletions for one base table.

    Parameters
    ----------
    base_name:
        Name of the table the changes apply to (e.g. ``"pos"``); used to
        name the change tables ``{base_name}_ins`` / ``{base_name}_del`` as
        in the paper.
    schema:
        The base table's schema.
    """

    def __init__(self, base_name: str, schema: Schema | Sequence[str]):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.base_name = base_name
        self.insertions = Table(f"{base_name}_ins", schema)
        self.deletions = Table(f"{base_name}_del", schema)
        #: Batches (batch id → ingest timestamp) deferred here and not
        #: yet cleared; every enqueue stamps one unless a :meth:`batch`
        #: scope is open.
        self.lineage = BatchLineage()
        self._open_batch: int | None = None

    def __repr__(self) -> str:
        return (
            f"ChangeSet({self.base_name!r}, +{len(self.insertions)} "
            f"-{len(self.deletions)})"
        )

    @property
    def schema(self) -> Schema:
        return self.insertions.schema

    def _stamp(self) -> None:
        """Stamp the enqueue that is about to happen with a batch id."""
        if self._open_batch is not None:
            return   # grouped under the surrounding batch() scope
        batch_id, ingest_ts = lineage_clock().next_batch()
        self.lineage.stamp(batch_id, ingest_ts)

    @contextmanager
    def batch(self) -> Iterator[int]:
        """Group every enqueue inside the ``with`` block under one batch id.

        The micro-batch primitive: a streaming source that delivers a
        burst of rows stamps them as one unit of visibility tracking
        instead of one batch per row.  Yields the batch id.  Scopes do
        not nest (the outer scope keeps its id).
        """
        if self._open_batch is not None:
            yield self._open_batch
            return
        batch_id, ingest_ts = lineage_clock().next_batch()
        self.lineage.stamp(batch_id, ingest_ts)
        self._open_batch = batch_id
        try:
            yield batch_id
        finally:
            self._open_batch = None

    def insert(self, row: Sequence[Any]) -> None:
        """Defer an insertion."""
        self._stamp()
        self.insertions.insert(row)

    def delete(self, row: Sequence[Any]) -> None:
        """Defer a deletion (one bag occurrence of *row*)."""
        self._stamp()
        self.deletions.insert(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        self._stamp()
        return self.insertions.insert_many(rows)

    def delete_many(self, rows: Iterable[Sequence[Any]]) -> int:
        self._stamp()
        return self.deletions.insert_many(rows)

    def merge(self, other: "ChangeSet") -> None:
        """Accumulate *other*'s deferred rows and lineage into this set.

        The streaming-accumulation primitive: small change sets produced
        continuously compose into the one the next maintenance cycle
        consumes, and the merged lineage keeps every contributing batch's
        original ingest timestamp (so visibility lag measures from true
        arrival, not from the merge).
        """
        if other.schema != self.schema:
            raise TableError(
                f"cannot merge change set for {other.base_name!r} into "
                f"{self.base_name!r}: schemas differ"
            )
        self.insertions.insert_many(other.insertions.scan())
        self.deletions.insert_many(other.deletions.scan())
        self.lineage.merge(other.lineage)

    def size(self) -> int:
        """Total number of deferred change tuples."""
        return len(self.insertions) + len(self.deletions)

    def is_empty(self) -> bool:
        return self.size() == 0

    def clear(self) -> None:
        """Drop all deferred changes (after they have been applied)."""
        self.insertions.truncate()
        self.deletions.truncate()
        self.lineage.clear()

    def apply_to(self, base: Table) -> None:
        """Apply the deferred changes to *base* in bulk, transactionally.

        Deletions are resolved by counting requested rows and finding the
        matching slots in a single read-only scan (one pass over the base
        table, independent of the number of deletions); insertions are
        arity-checked against the base schema.  Only after *every* change
        validates does any mutation happen, so a bad batch — a deletion
        matching no base row — raises
        :class:`~repro.errors.InconsistentDeltaError` with *base* exactly
        as it was.
        """
        if base.schema != self.schema:
            raise TableError(
                f"change set for {self.base_name!r} does not match schema of "
                f"table {base.name!r}"
            )
        doomed_slots: list[int] = []
        if len(self.deletions):
            wanted: Counter[Row] = Counter(self.deletions.scan())
            remaining = sum(wanted.values())
            for slot, row in base.slots():
                if remaining == 0:
                    break
                count = wanted.get(row, 0)
                if count:
                    wanted[row] = count - 1
                    remaining -= 1
                    doomed_slots.append(slot)
            if remaining:
                missing = [row for row, count in wanted.items() if count > 0]
                raise InconsistentDeltaError(
                    f"{remaining} deferred deletion(s) match no row in "
                    f"{base.name!r}; first missing row: {missing[0]!r}"
                )
        # Validation complete — mutations from here on cannot fail: the
        # doomed slots were live when scanned, and every deferred
        # insertion was arity-checked against this same schema when it
        # entered the change tables.
        for slot in doomed_slots:
            base.delete_slot(slot)
        base.insert_many(self.insertions.scan())
