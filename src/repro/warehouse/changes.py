"""Deferred change sets: the ``pos_ins`` / ``pos_del`` tables.

Warehouses defer source changes during the day and apply them in a nightly
batch (paper, Sections 1–2).  A :class:`ChangeSet` holds the deferred
insertions and deletions for one base table, in tables sharing that base
table's schema.  The maintenance algorithms read the change set during
*propagate*; :meth:`ChangeSet.apply_to` applies it to the base table (before
*refresh*, as the paper assumes, so MIN/MAX recomputation sees updated base
data).

Deletion semantics are bag-style: each deletion row removes exactly one
matching occurrence from the base table.  Applying a deletion that matches
nothing raises :class:`~repro.errors.InconsistentDeltaError`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Sequence

from ..errors import InconsistentDeltaError, TableError
from ..relational.schema import Schema
from ..relational.table import Row, Table


class ChangeSet:
    """Deferred insertions and deletions for one base table.

    Parameters
    ----------
    base_name:
        Name of the table the changes apply to (e.g. ``"pos"``); used to
        name the change tables ``{base_name}_ins`` / ``{base_name}_del`` as
        in the paper.
    schema:
        The base table's schema.
    """

    def __init__(self, base_name: str, schema: Schema | Sequence[str]):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.base_name = base_name
        self.insertions = Table(f"{base_name}_ins", schema)
        self.deletions = Table(f"{base_name}_del", schema)

    def __repr__(self) -> str:
        return (
            f"ChangeSet({self.base_name!r}, +{len(self.insertions)} "
            f"-{len(self.deletions)})"
        )

    @property
    def schema(self) -> Schema:
        return self.insertions.schema

    def insert(self, row: Sequence[Any]) -> None:
        """Defer an insertion."""
        self.insertions.insert(row)

    def delete(self, row: Sequence[Any]) -> None:
        """Defer a deletion (one bag occurrence of *row*)."""
        self.deletions.insert(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        return self.insertions.insert_many(rows)

    def delete_many(self, rows: Iterable[Sequence[Any]]) -> int:
        return self.deletions.insert_many(rows)

    def size(self) -> int:
        """Total number of deferred change tuples."""
        return len(self.insertions) + len(self.deletions)

    def is_empty(self) -> bool:
        return self.size() == 0

    def clear(self) -> None:
        """Drop all deferred changes (after they have been applied)."""
        self.insertions.truncate()
        self.deletions.truncate()

    def apply_to(self, base: Table) -> None:
        """Apply the deferred changes to *base* in bulk.

        Deletions are applied first by counting requested rows and removing
        matching slots in a single scan (so the cost is one pass over the
        base table, independent of the number of deletions), then insertions
        are appended.
        """
        if base.schema != self.schema:
            raise TableError(
                f"change set for {self.base_name!r} does not match schema of "
                f"table {base.name!r}"
            )
        if len(self.deletions):
            wanted: Counter[Row] = Counter(self.deletions.scan())
            remaining = sum(wanted.values())
            doomed_slots: list[int] = []
            for slot, row in base.slots():
                if remaining == 0:
                    break
                count = wanted.get(row, 0)
                if count:
                    wanted[row] = count - 1
                    remaining -= 1
                    doomed_slots.append(slot)
            if remaining:
                missing = [row for row, count in wanted.items() if count > 0]
                raise InconsistentDeltaError(
                    f"{remaining} deferred deletion(s) match no row in "
                    f"{base.name!r}; first missing row: {missing[0]!r}"
                )
            for slot in doomed_slots:
                base.delete_slot(slot)
        base.insert_many(self.insertions.scan())
