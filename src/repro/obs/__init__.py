"""Maintenance observability: structured tracing + metrics.

The subsystem behind the ``repro trace`` CLI.  Zero dependencies, off by
default, and guarded by the ``REPRO_TRACE`` kill-switch:

* :mod:`repro.obs.tracing` — hierarchical spans with wall-clock durations,
  tags, and row/tuple counters, recorded by the engine's hot paths
  (``Table.scan``, ``group_by``, propagate, refresh, the nightly driver);
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms (refresh actions, undo-log entries, chunk sizes,
  executor queue waits);
* :mod:`repro.obs.export` — JSON-lines trace files, the human span-tree
  printer, and the compact summary merged into ``BENCH_*.json``.

Quick use::

    from repro.obs import trace, format_span_tree

    with trace() as recorder:
        run_nightly_maintenance(warehouse)
    print(format_span_tree(recorder.root))
"""

from . import audit, export, ledger, lineage, metrics, serving, tracing
from .audit import (
    IntegrityEvent,
    ViewCertificate,
    ViewFreshness,
    certificates_enabled,
    record_events,
    row_digest,
    rows_certificate,
)
from .export import (
    format_span_tree,
    prometheus_text,
    span_to_dict,
    trace_summary,
    write_trace_jsonl,
)
from .ledger import (
    RegressionFinding,
    RegressionReport,
    RunLedger,
    active_ledger,
    detect_regression,
    set_ledger,
    suspended_ledger,
)
from .lineage import (
    BatchLineage,
    EpochManifest,
    LineageClock,
    ViewLineage,
    compress_intervals,
    lineage_clock,
    record_publish,
    set_lineage_clock,
)
from .metrics import (
    BUCKET_BOUNDS,
    LAG_BUCKETS_S,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    registry,
    set_registry,
)
from .serving import (
    STALENESS_SLO_ENV_VAR,
    MetricsExporter,
    SlowQuerySample,
    SlowQuerySampler,
    current_request_id,
    export_serving_gauges,
    format_top,
    next_request_id,
    request_scope,
    resolve_staleness_slo,
    status_payload,
)
from .tracing import (
    NOOP_SPAN,
    NullRecorder,
    Span,
    TraceRecorder,
    active_recorder,
    current_span,
    enabled,
    install_recorder,
    span,
    trace,
    trace_kill_switch,
)

__all__ = [
    "BUCKET_BOUNDS",
    "LAG_BUCKETS_S",
    "LATENCY_BUCKETS_S",
    "NOOP_SPAN",
    "STALENESS_SLO_ENV_VAR",
    "BatchLineage",
    "Counter",
    "EpochManifest",
    "Gauge",
    "Histogram",
    "IntegrityEvent",
    "LineageClock",
    "MetricsExporter",
    "MetricsRegistry",
    "NullRecorder",
    "RegressionFinding",
    "RegressionReport",
    "RunLedger",
    "SlowQuerySample",
    "SlowQuerySampler",
    "Span",
    "TraceRecorder",
    "ViewCertificate",
    "ViewFreshness",
    "ViewLineage",
    "active_ledger",
    "active_recorder",
    "certificates_enabled",
    "compress_intervals",
    "current_request_id",
    "current_span",
    "detect_regression",
    "enabled",
    "export_serving_gauges",
    "format_span_tree",
    "format_top",
    "install_recorder",
    "lineage_clock",
    "metric_key",
    "next_request_id",
    "prometheus_text",
    "record_events",
    "record_publish",
    "registry",
    "request_scope",
    "resolve_staleness_slo",
    "row_digest",
    "rows_certificate",
    "set_ledger",
    "set_lineage_clock",
    "set_registry",
    "span",
    "span_to_dict",
    "status_payload",
    "suspended_ledger",
    "trace",
    "trace_kill_switch",
    "trace_summary",
    "write_trace_jsonl",
]
