"""Exporters for recorded traces: JSON-lines, human tree, bench JSON.

Three consumers, three shapes:

* :func:`write_trace_jsonl` — one JSON object per span (id, parent id,
  name, tags, counters, seconds), the machine-readable artifact a later
  analysis step can load line by line;
* :func:`format_span_tree` — the human tree printer the ``repro trace``
  CLI shows, durations and counters inline;
* :func:`trace_summary` — a compact summary (window split, per-phase
  seconds, metrics snapshot) suitable for merging into the repo's
  ``BENCH_*.json`` via :func:`repro.bench.reporting.write_bench_json`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from .metrics import MetricsRegistry, registry
from .tracing import Span

__all__ = [
    "format_span_tree",
    "prometheus_text",
    "span_to_dict",
    "trace_summary",
    "write_trace_jsonl",
]


def span_to_dict(span: Span) -> dict[str, Any]:
    """One span as a flat JSON-serialisable record (no children)."""
    return {
        "id": span.span_id,
        "parent_id": span.parent.span_id if span.parent is not None else None,
        "name": span.name,
        "seconds": round(span.seconds, 9),
        "tags": dict(span.tags),
        "counters": dict(span.counters),
    }


def write_trace_jsonl(root: Span, path: pathlib.Path | str) -> pathlib.Path:
    """Write the span tree as JSON lines, parents before children.

    Written atomically (tempfile + ``os.replace``) so a crashed exporter
    never leaves a truncated trace file behind.
    """
    # Imported here, not at module level: repro.bench sits above the
    # drivers that pull obs in (same layering note as repro.obs.ledger).
    from ..bench.reporting import atomic_write_text

    target = pathlib.Path(path)
    lines = [json.dumps(span_to_dict(span), sort_keys=True)
             for span in root.walk()]
    atomic_write_text(target, "\n".join(lines) + "\n")
    return target


def _format_counters(span: Span) -> str:
    if not span.counters:
        return ""
    inner = ", ".join(
        f"{key}={value:,}" if isinstance(value, int) else f"{key}={value:.3g}"
        for key, value in sorted(span.counters.items())
    )
    return f"  [{inner}]"


def _format_tags(span: Span) -> str:
    shown = {key: value for key, value in span.tags.items()}
    if not shown:
        return ""
    inner = " ".join(f"{key}={value}" for key, value in sorted(shown.items()))
    return f"  ({inner})"


def format_span_tree(root: Span, max_depth: int | None = None) -> str:
    """An indented tree: name, seconds, tags, counters, one span per line."""
    lines: list[str] = []

    def render(span: Span, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        indent = "  " * depth
        lines.append(
            f"{indent}{span.name:<{max(1, 40 - 2 * depth)}} "
            f"{span.seconds * 1000:>10.3f}ms"
            f"{_format_tags(span)}{_format_counters(span)}"
        )
        for child in span.children:
            render(child, depth + 1)

    render(root, 0)
    return "\n".join(lines)


def trace_summary(
    root: Span, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """A compact plain-data summary of one traced run.

    The ``window`` block is the span-tag-driven batch-window accounting:
    seconds summed over spans tagged ``window=online`` / ``window=offline``
    whose ancestors carry no window tag (so nested phases are not counted
    twice) — the same rule :meth:`repro.warehouse.batch.BatchReport.from_spans`
    applies.
    """
    online = offline = 0.0
    phases: dict[str, float] = {}
    for span in root.walk():
        window = span.tags.get("window")
        if window is None:
            continue
        ancestor = span.parent
        nested = False
        while ancestor is not None:
            if "window" in ancestor.tags:
                nested = True
                break
            ancestor = ancestor.parent
        if nested:
            continue
        if window == "offline":
            offline += span.seconds
        else:
            online += span.seconds
        phases[span.name] = phases.get(span.name, 0.0) + span.seconds
    summary: dict[str, Any] = {
        "total_s": round(root.seconds, 6),
        "spans": sum(1 for _ in root.walk()),
        "window": {
            "online_s": round(online, 6),
            "offline_s": round(offline, 6),
        },
        "phases": {name: round(seconds, 6) for name, seconds in sorted(phases.items())},
    }
    snapshot = (metrics or registry()).snapshot()
    if any(snapshot.values()):
        summary["metrics"] = snapshot
    return summary


def _prom_name(name: str) -> str:
    """A dotted metric name as a Prometheus metric name.

    Dots (and anything else outside ``[a-zA-Z0-9_]``) become underscores,
    and everything gets the ``repro_`` namespace prefix:
    ``refresh.actions.update`` → ``repro_refresh_actions_update``.
    """
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_value(value: int | float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _prom_label_value(value: Any) -> str:
    """A label value escaped per the 0.0.4 text exposition format:
    backslash → ``\\\\``, double quote → ``\\"``, newline → ``\\n``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_label_name(name: str) -> str:
    """A label name restricted to ``[a-zA-Z_][a-zA-Z0-9_]*``."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_labels(labels: dict[str, Any] | None,
                 extra: dict[str, str] | None = None) -> str:
    """Render a label set as ``{k="v",...}`` (empty string when none)."""
    merged: dict[str, str] = {}
    if labels:
        for key in sorted(labels):
            merged[_prom_label_name(key)] = _prom_label_value(labels[key])
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in merged.items())
    return "{" + inner + "}"


def prometheus_text(metrics: MetricsRegistry | None = None) -> str:
    """The registry in the Prometheus text exposition format (version
    0.0.4 — what a file-based or pushgateway scrape expects).

    Counters render as ``counter`` samples, gauges as ``gauge``, and
    histograms in the standard three-part shape: cumulative ``_bucket``
    samples with ``le`` labels (including the mandatory ``le="+Inf"``),
    then ``_sum`` and ``_count``.

    Metrics sharing one name but different label sets form a single
    family: one ``# TYPE`` line, then one sample per label set, label
    values escaped per the format (backslash, double quote, newline).
    """
    counters, gauges, histograms = (metrics or registry()).all_metrics()
    lines: list[str] = []

    def emit(metric_list, kind: str, render) -> None:
        families: dict[str, list] = {}
        for metric in metric_list:
            families.setdefault(_prom_name(metric.name), []).append(metric)
        for name in sorted(families):
            lines.append(f"# TYPE {name} {kind}")
            for metric in families[name]:
                render(name, metric)

    def render_counter(name: str, counter) -> None:
        lines.append(
            f"{name}{_prom_labels(counter.labels)} "
            f"{_prom_value(counter.value)}"
        )

    def render_histogram(name: str, histogram) -> None:
        for bound, cumulative in histogram.cumulative_buckets():
            labels = _prom_labels(
                histogram.labels, extra={"le": _prom_value(bound)}
            )
            lines.append(f"{name}_bucket{labels} {cumulative}")
        suffix = _prom_labels(histogram.labels)
        lines.append(f"{name}_sum{suffix} {_prom_value(histogram.total)}")
        lines.append(f"{name}_count{suffix} {histogram.count}")

    emit(counters, "counter", render_counter)
    emit(gauges, "gauge", render_counter)
    emit(histograms, "histogram", render_histogram)
    return "\n".join(lines) + "\n" if lines else ""
