"""Change-set lineage: batch ids from ingest to published epochs.

The paper's deferred-maintenance model (§1–2) batches source changes in
``pos_ins`` / ``pos_del`` tables and folds them into the summary tables
during a maintenance window.  The observability layers so far watch the
two endpoints — maintenance phases on one side, per-view staleness on
the other — but cannot answer the questions that sit *between* them:
which published epochs contain change batch N?  How long did a change
wait between arriving at the warehouse and becoming queryable?

This module threads an identity through the whole pipeline:

* :class:`LineageClock` — a process-wide allocator of monotonically
  increasing **batch ids**, each stamped with its ingest timestamp.
  Every :class:`~repro.warehouse.changes.ChangeSet` enqueue draws one.
* :class:`BatchLineage` — the set of batches contributing to a change
  set or a summary delta: batch id → ingest timestamp, composable under
  merge/accumulation and cheap to snapshot (deltas carry an immutable
  copy taken at propagate time).
* :class:`EpochManifest` — the publish-side record: when one refresh
  commits (in-place, atomic, or versioned publish), the contributing
  batches and their ingest→publish lags are pinned to the resulting
  ``(epoch, refresh_count)`` stamp, next to the epoch's certificate.
* :class:`ViewLineage` — the per-view manifest log, mirroring
  :class:`~repro.obs.audit.ViewFreshness`.  It indexes manifests by
  batch id and *refuses duplicates*: a batch id landing in a second
  manifest for the same view means the same deferred changes were
  applied twice, which corrupts aggregates — the no-loss/no-duplication
  invariant the property suite checks is enforced at record time.

:func:`record_publish` is the single hook the refresh variants call
after a successful commit; a refresh that raises (rollback, abandoned
shadow, failed publish) records nothing, so manifests only ever describe
epochs that became visible.  Like the serving metrics, lineage metrics
record unconditionally — ``REPRO_TRACE`` gates spans, not lineage.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Iterator, Mapping

from ..errors import LineageError
from . import metrics as obs_metrics

__all__ = [
    "BatchLineage",
    "EpochManifest",
    "LineageClock",
    "ViewLineage",
    "compress_intervals",
    "lineage_clock",
    "record_publish",
    "set_lineage_clock",
]


def compress_intervals(batch_ids: Iterable[int]) -> list[tuple[int, int]]:
    """Sorted ``[lo, hi]`` runs of consecutive batch ids.

    Batch ids are allocated monotonically, so the batches of one change
    set (and of the manifests downstream) are usually a handful of dense
    runs; intervals are how lineage renders and serialises them without
    listing every id.
    """
    out: list[tuple[int, int]] = []
    for batch_id in sorted(set(batch_ids)):
        if out and batch_id == out[-1][1] + 1:
            out[-1] = (out[-1][0], batch_id)
        else:
            out.append((batch_id, batch_id))
    return out


class LineageClock:
    """Process-wide monotonic batch-id allocator (thread-safe).

    One id per :class:`~repro.warehouse.changes.ChangeSet` enqueue call;
    ids are unique across every change set drawing from the same clock,
    which is what lets a batch be traced through merges, propagation,
    and into whichever epoch manifests finally contain it.
    """

    def __init__(self, start: int = 1):
        self._lock = threading.Lock()
        self._next = start

    def next_batch(self, now: float | None = None) -> tuple[int, float]:
        """Allocate ``(batch_id, ingest_ts)``."""
        ts = now if now is not None else time.time()
        with self._lock:
            batch_id = self._next
            self._next += 1
        return batch_id, ts

    def peek(self) -> int:
        """The id the next allocation will return (for tests/diagnostics)."""
        with self._lock:
            return self._next


_clock = LineageClock()


def lineage_clock() -> LineageClock:
    """The process-wide clock every change-set enqueue stamps from."""
    return _clock


def set_lineage_clock(clock: LineageClock) -> LineageClock:
    """Swap the process-wide clock (tests); returns the previous one."""
    global _clock
    previous = _clock
    _clock = clock
    return previous


class BatchLineage:
    """The batches behind one change set or summary delta.

    A mapping of batch id → ingest timestamp.  Mutable on the change-set
    side (enqueues stamp, ``merge`` composes, ``clear`` resets alongside
    the deferred rows); deltas carry a :meth:`snapshot` taken when
    propagate reads the change set, so later enqueues never leak into an
    already-computed delta's lineage.
    """

    __slots__ = ("_ingest",)

    def __init__(self, ingest: Mapping[int, float] | None = None):
        self._ingest: dict[int, float] = dict(ingest) if ingest else {}

    def __len__(self) -> int:
        return len(self._ingest)

    def __bool__(self) -> bool:
        return bool(self._ingest)

    def __contains__(self, batch_id: int) -> bool:
        return batch_id in self._ingest

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._ingest))

    def __repr__(self) -> str:
        runs = ",".join(
            f"{lo}" if lo == hi else f"{lo}-{hi}"
            for lo, hi in self.intervals()
        )
        return f"BatchLineage([{runs}])"

    def stamp(self, batch_id: int, ingest_ts: float) -> None:
        """Record one batch; an earlier ingest timestamp wins on re-stamp."""
        previous = self._ingest.get(batch_id)
        if previous is None or ingest_ts < previous:
            self._ingest[batch_id] = ingest_ts

    def merge(self, other: "BatchLineage") -> None:
        """Fold another lineage in (change-set accumulation/merge)."""
        for batch_id, ingest_ts in other._ingest.items():
            self.stamp(batch_id, ingest_ts)

    def clear(self) -> None:
        self._ingest.clear()

    def snapshot(self) -> "BatchLineage":
        """An independent copy (what summary deltas carry)."""
        return BatchLineage(self._ingest)

    def batch_ids(self) -> frozenset[int]:
        return frozenset(self._ingest)

    def ingest_ts(self, batch_id: int) -> float:
        return self._ingest[batch_id]

    def items(self) -> list[tuple[int, float]]:
        """``(batch_id, ingest_ts)`` pairs, oldest batch id first."""
        return sorted(self._ingest.items())

    def intervals(self) -> list[tuple[int, int]]:
        return compress_intervals(self._ingest)

    def oldest_ingest_ts(self) -> float | None:
        return min(self._ingest.values()) if self._ingest else None

    def oldest_age_s(self, now: float | None = None) -> float:
        """Age of the oldest batch (0.0 when empty)."""
        oldest = self.oldest_ingest_ts()
        if oldest is None:
            return 0.0
        now = now if now is not None else time.time()
        return max(0.0, now - oldest)

    def difference(self, published: frozenset[int]) -> "BatchLineage":
        """The batches here that are *not* in *published* (the pending set
        of a change set relative to one view's manifests)."""
        return BatchLineage({
            batch_id: ts for batch_id, ts in self._ingest.items()
            if batch_id not in published
        })

    def as_dict(self) -> dict[str, Any]:
        return {
            "batches": len(self._ingest),
            "intervals": [list(run) for run in self.intervals()],
            "oldest_ingest_ts": self.oldest_ingest_ts(),
        }


class EpochManifest:
    """One committed refresh: which batches became visible, and when.

    Immutable once recorded.  ``epoch`` / ``refresh_count`` are the
    view's :meth:`~repro.views.materialize.MaterializedView.version_stamp`
    after the commit — the same stamp the serving cache keys on, so a
    manifest names exactly the view state a reader observes the batches
    in.  Per-batch lag is ``publish_ts - ingest_ts``: the end-to-end
    time a change waited between arriving and becoming queryable.
    """

    __slots__ = ("view", "epoch", "refresh_count", "mode", "publish_ts",
                 "_ingest")

    def __init__(
        self,
        view: str,
        epoch: int,
        refresh_count: int,
        mode: str,
        publish_ts: float,
        lineage: BatchLineage,
    ):
        self.view = view
        self.epoch = epoch
        self.refresh_count = refresh_count
        self.mode = mode
        self.publish_ts = publish_ts
        self._ingest: dict[int, float] = dict(lineage._ingest)

    def __repr__(self) -> str:
        runs = ",".join(
            f"{lo}" if lo == hi else f"{lo}-{hi}"
            for lo, hi in self.intervals()
        )
        return (
            f"EpochManifest({self.view!r}, epoch {self.epoch}, "
            f"batches [{runs}])"
        )

    def __contains__(self, batch_id: int) -> bool:
        return batch_id in self._ingest

    @property
    def batches(self) -> tuple[int, ...]:
        return tuple(sorted(self._ingest))

    def intervals(self) -> list[tuple[int, int]]:
        return compress_intervals(self._ingest)

    def lags(self) -> dict[int, float]:
        """Per-batch ingest→publish lag in seconds (never negative)."""
        return {
            batch_id: max(0.0, self.publish_ts - ingest_ts)
            for batch_id, ingest_ts in sorted(self._ingest.items())
        }

    @property
    def max_lag_s(self) -> float:
        lags = self.lags()
        return max(lags.values()) if lags else 0.0

    @property
    def mean_lag_s(self) -> float:
        lags = self.lags()
        return sum(lags.values()) / len(lags) if lags else 0.0

    def as_dict(self) -> dict[str, Any]:
        lags = self.lags()
        return {
            "view": self.view,
            "epoch": self.epoch,
            "refresh_count": self.refresh_count,
            "mode": self.mode,
            "publish_ts": self.publish_ts,
            "batches": len(self._ingest),
            "intervals": [list(run) for run in self.intervals()],
            "max_lag_s": round(self.max_lag_s, 6),
            "mean_lag_s": round(self.mean_lag_s, 6),
        }


class ViewLineage:
    """Per-view manifest log + batch index (thread-safe).

    Attached to every :class:`~repro.views.materialize.MaterializedView`
    the way ``freshness`` is.  ``record`` appends a manifest and indexes
    its batches; a batch id already present in an earlier manifest of
    the *same* view raises :class:`~repro.errors.LineageError` before
    anything is recorded — the same batches landing in sibling views'
    manifests is normal (one change set maintains many views), landing
    twice in one view means a double apply.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._manifests: list[EpochManifest] = []
        self._by_batch: dict[int, EpochManifest] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifests)

    def record(
        self,
        view: str,
        epoch: int,
        refresh_count: int,
        mode: str,
        lineage: BatchLineage,
        publish_ts: float | None = None,
    ) -> EpochManifest:
        publish_ts = publish_ts if publish_ts is not None else time.time()
        manifest = EpochManifest(
            view, epoch, refresh_count, mode, publish_ts, lineage
        )
        with self._lock:
            duplicates = [
                batch_id for batch_id in manifest.batches
                if batch_id in self._by_batch
            ]
            if duplicates:
                prior = self._by_batch[duplicates[0]]
                raise LineageError(
                    f"batch {duplicates[0]} already published to view "
                    f"{view!r} in epoch {prior.epoch} (refresh "
                    f"{prior.refresh_count}); applying it again would "
                    "double-count its changes"
                )
            self._manifests.append(manifest)
            for batch_id in manifest.batches:
                self._by_batch[batch_id] = manifest
        return manifest

    def manifests(self) -> list[EpochManifest]:
        with self._lock:
            return list(self._manifests)

    def manifests_since(self, mark: int) -> list[EpochManifest]:
        """Manifests recorded after the log held *mark* entries."""
        with self._lock:
            return list(self._manifests[mark:])

    def last_manifest(self) -> EpochManifest | None:
        with self._lock:
            return self._manifests[-1] if self._manifests else None

    def manifest_for(self, batch_id: int) -> EpochManifest | None:
        """The manifest containing *batch_id*, or ``None`` if unpublished."""
        with self._lock:
            return self._by_batch.get(batch_id)

    def published_batches(self) -> frozenset[int]:
        with self._lock:
            return frozenset(self._by_batch)

    def batches_published(self) -> int:
        with self._lock:
            return len(self._by_batch)

    def pending_against(self, lineage: BatchLineage) -> BatchLineage:
        """The batches of *lineage* not yet published to this view."""
        return lineage.difference(self.published_batches())

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            last = self._manifests[-1] if self._manifests else None
            return {
                "manifests": len(self._manifests),
                "batches_published": len(self._by_batch),
                "intervals": [
                    list(run) for run in compress_intervals(self._by_batch)
                ],
                "last_manifest": last.as_dict() if last is not None else None,
            }


def record_publish(
    view,
    delta,
    mode: str,
    metrics: obs_metrics.MetricsRegistry | None = None,
    now: float | None = None,
) -> EpochManifest | None:
    """Record one committed refresh's manifest and observe its lag metrics.

    Called by ``refresh`` / ``refresh_atomically`` / ``refresh_versioned``
    *after* the commit point (publish swap done, freshness stamped) —
    never on a rolled-back or abandoned refresh.  Returns ``None`` when
    the delta carries no lineage (a hand-built delta table) or the view
    has no lineage tracker (a shadow or duck-typed stand-in).
    """
    lineage = getattr(delta, "lineage", None)
    tracker = getattr(view, "lineage", None)
    if tracker is None or not lineage:
        return None
    epoch, refresh_count = view.version_stamp()
    manifest = tracker.record(
        view.name, epoch, refresh_count, mode, lineage, publish_ts=now
    )
    registry = metrics if metrics is not None else obs_metrics.registry()
    labels = {"view": view.name}
    lag_histogram = registry.histogram(
        "lineage.visibility_lag_s", labels=labels,
        bounds=obs_metrics.LAG_BUCKETS_S,
    )
    for lag in manifest.lags().values():
        lag_histogram.observe(lag)
    registry.counter("lineage.manifests", labels=labels).inc()
    registry.counter("lineage.batches_published", labels=labels).inc(
        len(manifest.batches)
    )
    return manifest
