"""The persistent run ledger: every maintenance run leaves a record.

One maintenance run is one JSON line appended to a ledger file —
per-phase durations, tuple accesses, per-view refresh counters, the cost
model's predictions, and the engine configuration.  Across nights the
file accumulates the warehouse's maintenance *trajectory*, which is what
turns the Figure 9 reproduction from a one-shot benchmark into something
auditable: ``repro history`` lists the runs, ``repro regress`` compares
the newest run against a baseline window and flags regressions.

Appends are crash- and concurrency-safe: each append takes an exclusive
inter-process lock on a ``<ledger>.lock`` sibling (``fcntl.flock`` where
available), re-reads the current contents, and rewrites the whole file
through :func:`~repro.bench.reporting.atomic_write_text` — so a reader
or a crashed writer can never observe a truncated line, and concurrent
appenders serialise instead of interleaving.

The ledger is **off by default**.  Two ways to turn it on:

* ``REPRO_LEDGER=/path/to/ledger.jsonl`` in the environment — every
  ``maintain_lattice`` / ``run_nightly_maintenance`` call records itself
  (how the CI smoke builds its artifact);
* :func:`set_ledger` with a :class:`RunLedger` — for embedders and tests.

Record schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "run_id": 7,                  # 1-based position in this ledger
      "ts": 1754500000.0,           # epoch seconds at append time
      "kind": "maintain_lattice",   # or "nightly"
      "engine": {...},              # PropagateOptions + use_lattice
      "phases": [{"name", "seconds", "offline"}, ...],   # depth-0 only
      "online_s": ..., "offline_s": ...,
      "access": {"rows_scanned": ..., ..., "total": ...} | null,
      "views": {"<view>": {"delta_rows", "inserted", "updated",
                            "deleted", "recomputed"}, ...},
      "changes": {"insertions": n, "deletions": n},
      "predictions": {"<view>": {"propagate_accesses", "delta_rows"},
                       ...} | null,
      "predicted_with_lattice": ..., "predicted_without_lattice": ...
    }

(``access`` is present whenever the run recorded itself — the drivers
open a :func:`~repro.relational.stats.measuring` block around the run
when a ledger is active.)
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from statistics import median
from typing import Any, Iterator

try:  # POSIX; on other platforms appends fall back to thread-level locking
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "LEDGER_ENV_VAR",
    "LEDGER_SCHEMA_VERSION",
    "RegressionFinding",
    "RegressionReport",
    "RunLedger",
    "active_ledger",
    "detect_regression",
    "set_ledger",
    "suspended_ledger",
]

LEDGER_SCHEMA_VERSION = 1

#: Environment variable naming the ledger file maintenance runs append to.
LEDGER_ENV_VAR = "REPRO_LEDGER"


class RunLedger:
    """An append-only JSONL file of maintenance-run records."""

    def __init__(self, path: pathlib.Path | str):
        self.path = pathlib.Path(path)
        self._thread_lock = threading.Lock()

    # -- writing -------------------------------------------------------

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Append one record; returns it with ``run_id``/``ts``/
        ``schema_version`` filled in.

        The whole read-extend-rewrite happens under an exclusive file
        lock, so concurrent appenders (threads or processes) each land a
        complete line and ``run_id`` stays a gapless 1-based sequence.
        """
        # Imported here, not at module level: the maintenance drivers pull
        # this module in, and repro.bench sits above them in the layering
        # (bench.figure9 imports the drivers).
        from ..bench.reporting import atomic_write_text

        with self._thread_lock, self._file_lock():
            existing = self._read_lines()
            if existing and _parse_line(existing[-1]) is None:
                # A crash mid-append can leave a truncated trailing line;
                # appending after it would corrupt the file mid-stream.
                # Drop it (with a warning) — the rewrite self-heals.
                warnings.warn(
                    f"{self.path}: dropping truncated trailing ledger line",
                    stacklevel=2,
                )
                existing.pop()
            stamped = dict(record)
            stamped.setdefault("schema_version", LEDGER_SCHEMA_VERSION)
            stamped["run_id"] = len(existing) + 1
            stamped.setdefault("ts", time.time())
            existing.append(json.dumps(stamped, sort_keys=True))
            atomic_write_text(self.path, "\n".join(existing) + "\n")
            return stamped

    def _file_lock(self):
        lock_path = self.path.with_name(self.path.name + ".lock")
        return _FileLock(lock_path)

    def _read_lines(self) -> list[str]:
        if not self.path.exists():
            return []
        text = self.path.read_text()
        return [line for line in text.splitlines() if line.strip()]

    # -- reading -------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """Every record, oldest first.

        A malformed *trailing* line is the signature of a crash mid-append
        (the process died while the file was being extended); it is dropped
        with a ``UserWarning`` rather than raised, so ``repro history``
        stays usable after a crash.  A malformed line anywhere *else* is
        real corruption and still raises ``ValueError`` — a corrupt ledger
        should fail loudly, not be silently skipped.
        """
        lines = self._read_lines()
        out = []
        for number, line in enumerate(lines, start=1):
            record = _parse_line(line)
            if record is None:
                if number == len(lines):
                    warnings.warn(
                        f"{self.path}: ignoring truncated trailing ledger "
                        f"line {number} (crash mid-append?)",
                        stacklevel=2,
                    )
                    break
                raise ValueError(
                    f"{self.path}: line {number} is not a valid JSON record"
                )
            out.append(record)
        return out

    def tail(self, n: int) -> list[dict[str, Any]]:
        return self.records()[-n:]

    def __len__(self) -> int:
        return len(self._read_lines())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records())


def _parse_line(line: str) -> dict[str, Any] | None:
    """One ledger line as a record dict, or ``None`` when malformed."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class _FileLock:
    """Exclusive advisory lock on a sibling lockfile (no-op without fcntl)."""

    def __init__(self, path: pathlib.Path):
        self._path = path
        self._handle = None

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            self._handle = open(self._path, "a+")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
        return False


#: Explicitly installed ledger (overrides the environment variable).
_active: RunLedger | None = None

#: Suspension depth — while positive, :func:`active_ledger` reports None.
_suspended = 0


def set_ledger(ledger: RunLedger | None) -> RunLedger | None:
    """Install (or with ``None``, clear) the process-wide ledger; returns
    the previous one.  An installed ledger takes precedence over
    ``REPRO_LEDGER``."""
    global _active
    previous = _active
    _active = ledger
    return previous


def active_ledger() -> RunLedger | None:
    """The ledger maintenance runs should record to, or ``None``.

    Checked per *run*, so exporting ``REPRO_LEDGER`` mid-process works.
    """
    if _suspended > 0:
        return None
    if _active is not None:
        return _active
    path = os.environ.get(LEDGER_ENV_VAR, "").strip()
    if path:
        return RunLedger(path)
    return None


@contextmanager
def suspended_ledger() -> Iterator[None]:
    """Disable run recording for the duration of the block.

    A driver that calls another recording driver uses this so one run
    appends exactly one record — ``run_nightly_maintenance`` suspends
    around its per-fact ``maintain_lattice`` calls and appends a single
    warehouse-wide ``nightly`` record.  Works for both installed and
    ``REPRO_LEDGER``-driven ledgers.
    """
    global _suspended
    _suspended += 1
    try:
        yield
    finally:
        _suspended -= 1


# ----------------------------------------------------------------------
# Regression detection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RegressionFinding:
    """One metric's comparison against the baseline window."""

    metric: str
    current: float
    baseline: float
    ratio: float
    regressed: bool


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of comparing the newest run against a baseline window."""

    run_id: int
    baseline_ids: tuple[int, ...]
    findings: tuple[RegressionFinding, ...]
    #: Median of the per-phase time ratios — the headline verdict number.
    phase_ratio_median: float | None

    @property
    def regressed(self) -> bool:
        return any(finding.regressed for finding in self.findings)


def _phase_seconds(record: dict[str, Any]) -> dict[str, float]:
    return {
        phase["name"]: float(phase["seconds"])
        for phase in record.get("phases", ())
    }


def _access_total(record: dict[str, Any]) -> float | None:
    access = record.get("access")
    if not isinstance(access, dict):
        return None
    total = access.get("total")
    return float(total) if total is not None else None


def detect_regression(
    records: list[dict[str, Any]],
    window: int = 5,
    time_threshold: float = 1.5,
    access_threshold: float = 1.05,
    kind: str | None = None,
) -> RegressionReport:
    """Compare the newest record against the median of its predecessors.

    *Phase times* are noisy, so they get the noise-resistant treatment
    the benchmarks use: each phase's ratio is taken against the
    *median* of that phase across the baseline window, and the verdict
    ratio is the **median of those per-phase ratios** — one slow phase
    (or one GC pause) cannot flag the run; a systemic slowdown will.
    A phase-time regression needs the median ratio to exceed
    *time_threshold* (default: 1.5×).

    *Tuple accesses* are deterministic for a fixed workload, so their
    threshold is tight (default: 1.05×) and each compared directly
    against the baseline median.

    *kind* restricts the comparison to records of one kind (a
    ``maintain_lattice`` run must not be baselined against ``nightly``
    records).  Raises ``ValueError`` when fewer than two comparable
    records exist.
    """
    if kind is not None:
        records = [r for r in records if r.get("kind") == kind]
    if len(records) < 2:
        raise ValueError(
            "regression detection needs a current run plus at least one "
            f"baseline record ({len(records)} comparable record(s) found)"
        )
    current = records[-1]
    baseline = records[-1 - window:-1]

    findings: list[RegressionFinding] = []

    current_phases = _phase_seconds(current)
    phase_ratios: list[float] = []
    for name, seconds in sorted(current_phases.items()):
        history = [
            _phase_seconds(record).get(name)
            for record in baseline
        ]
        history = [value for value in history if value]
        if not history or seconds <= 0:
            continue
        base = median(history)
        if base <= 0:
            continue
        phase_ratios.append(seconds / base)
    phase_ratio_median: float | None = None
    if phase_ratios:
        phase_ratio_median = median(phase_ratios)
        findings.append(RegressionFinding(
            metric="phase_seconds(median-of-ratios)",
            current=sum(current_phases.values()),
            baseline=float("nan"),
            ratio=phase_ratio_median,
            regressed=phase_ratio_median > time_threshold,
        ))

    current_access = _access_total(current)
    access_history = [
        value for value in (_access_total(record) for record in baseline)
        if value is not None and value > 0
    ]
    if current_access is not None and access_history:
        base = median(access_history)
        ratio = current_access / base
        findings.append(RegressionFinding(
            metric="access_total",
            current=current_access,
            baseline=base,
            ratio=ratio,
            regressed=ratio > access_threshold,
        ))

    return RegressionReport(
        run_id=int(current.get("run_id", len(records))),
        baseline_ids=tuple(
            int(record.get("run_id", index + 1))
            for index, record in enumerate(baseline)
        ),
        findings=tuple(findings),
        phase_ratio_median=phase_ratio_median,
    )
