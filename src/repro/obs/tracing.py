"""Hierarchical spans: where does the maintenance window actually go?

The paper's batch-window accounting (§2.3, Figure 9) splits maintenance
into one online number (propagate) and one offline number (refresh).  This
module provides the finer instrument: a tree of *spans*, each with a
wall-clock duration, free-form tags, and integer counters (rows scanned,
delta rows emitted, undo-log entries, ...), recorded by the engine's hot
paths whenever a :class:`TraceRecorder` is active.

Tracing is **off by default** and costs one module-global ``None`` check
per instrumented *operation* (never per row) when off.  Three ways to turn
it on or keep it off:

* ``with trace():`` — record spans for the duration of the block (the
  ``repro trace`` CLI and the tests use this);
* ``REPRO_TRACE=1`` in the environment — install a process-wide ambient
  recorder at import time (how the CI overhead smoke enables tracing
  without touching benchmark code);
* ``REPRO_TRACE=0`` — the kill-switch: ``trace()`` yields the shared
  no-op recorder and every ``span()`` call returns the no-op span, so
  instrumentation cannot perturb a measurement no matter what the code
  under test requests.

Spans nest per thread.  Work dispatched to executor threads does not
inherit the dispatching thread's stack automatically; pass the dispatch
site's ``current_span()`` as ``parent=`` to attach worker spans correctly
(see :func:`repro.lattice.plan.propagate_lattice`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Iterator

__all__ = [
    "NOOP_SPAN",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "current_span",
    "active_recorder",
    "enabled",
    "install_recorder",
    "span",
    "trace",
    "trace_kill_switch",
]

_span_ids = itertools.count(1)


class Span:
    """One timed node of the trace tree."""

    __slots__ = (
        "span_id", "name", "tags", "counters", "children", "parent",
        "started", "ended",
    )

    def __init__(self, name: str, parent: "Span | None" = None,
                 tags: dict[str, Any] | None = None):
        self.span_id = next(_span_ids)
        self.name = name
        self.parent = parent
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.counters: dict[str, int | float] = {}
        self.children: list[Span] = []
        self.started = time.perf_counter()
        self.ended: float | None = None

    # -- recording -----------------------------------------------------

    def add(self, counter: str, n: int | float = 1) -> None:
        """Accumulate *n* into the named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def finish(self) -> None:
        if self.ended is None:
            self.ended = time.perf_counter()

    # -- introspection -------------------------------------------------

    @property
    def seconds(self) -> float:
        """Wall-clock duration (up to now for a still-open span)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, children in order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first descendant (or self) with *name*, depth-first."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [node for node in self.walk() if node.name == name]

    def total_counter(self, counter: str) -> int | float:
        """Sum of *counter* over this span and all descendants."""
        return sum(node.counters.get(counter, 0) for node in self.walk())

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.seconds:.6f}s, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """Context manager that opens/closes one span on a recorder.

    Deliberately not a ``@contextmanager`` generator: a plain object with
    ``__enter__``/``__exit__`` is cheaper and lets ``span(...)`` return the
    same type shape whether tracing is on (this) or off (the no-op span).
    """

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "TraceRecorder", span: Span):
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        self._recorder._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._pop(self._span)
        self._span.finish()
        if exc_type is not None:
            self._span.set_tag("error", exc_type.__name__)
        return False


class _NoopSpan:
    """Absorbs the whole span API at near-zero cost; used when tracing is
    off so instrumented code needs no conditionals around counter hits."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, n: int | float = 1) -> None:
        pass

    def set_tag(self, key: str, value: Any) -> None:
        pass

    @property
    def seconds(self) -> float:
        return 0.0


#: The shared do-nothing span/context manager.
NOOP_SPAN = _NoopSpan()


class TraceRecorder:
    """Collects a span tree; thread-safe.

    Every recorder owns a synthetic root span named ``trace``.  Spans
    opened while the recorder is active attach to the opening thread's
    innermost span, or to the root when the thread has none (so spans from
    executor worker threads are never lost, merely parented at the root
    unless an explicit ``parent=`` is given).
    """

    def __init__(self) -> None:
        self.root = Span("trace")
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span stack ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def span(self, name: str, parent: Span | None = None,
             **tags: Any) -> _SpanContext:
        """A context manager recording one span under *parent* (default:
        the calling thread's innermost span, else the root)."""
        if parent is None:
            parent = self.current() or self.root
        child = Span(name, parent, tags)
        with self._lock:
            parent.children.append(child)
        return _SpanContext(self, child)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- results -------------------------------------------------------

    def finish(self) -> Span:
        """Close the root span and return it."""
        self.root.finish()
        return self.root

    def spans(self, name: str) -> list[Span]:
        """All recorded spans with *name*."""
        return self.root.find_all(name)


class NullRecorder:
    """The recorder handed out under ``REPRO_TRACE=0``: swallows spans."""

    def __init__(self) -> None:
        self.root = Span("trace")

    def span(self, name: str, parent: Span | None = None, **tags: Any):
        return NOOP_SPAN

    def current(self) -> None:
        return None

    def finish(self) -> Span:
        self.root.finish()
        return self.root

    def spans(self, name: str) -> list[Span]:
        return []


def trace_kill_switch() -> bool:
    """``True`` when ``REPRO_TRACE=0`` forbids tracing entirely."""
    return os.environ.get("REPRO_TRACE", "").strip() == "0"


#: The active recorder, or ``None`` when tracing is off.  Process-wide by
#: design: maintenance spans from worker threads must land in the same tree.
_active: TraceRecorder | None = None


def active_recorder() -> TraceRecorder | None:
    return _active


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _active is not None


def current_span() -> Span | None:
    """The calling thread's innermost open span (``None`` when off).

    This is the per-operation fast path used by ``Table.scan`` and friends:
    one global read and a ``None`` check when tracing is off.
    """
    recorder = _active
    if recorder is None:
        return None
    return recorder.current() or recorder.root


def span(name: str, parent: Span | None = None, **tags: Any):
    """Open a span on the active recorder; a shared no-op when tracing is
    off.  Usable as a context manager either way::

        with span("group_by", table=table.name) as sp:
            sp.add("rows_in", len(rows))
    """
    recorder = _active
    if recorder is None:
        return NOOP_SPAN
    return recorder.span(name, parent=parent, **tags)


def install_recorder(recorder: TraceRecorder | None) -> TraceRecorder | NullRecorder | None:
    """Install (or with ``None``, clear) the process-wide recorder.

    Returns the recorder actually installed — the shared no-op recorder
    when the ``REPRO_TRACE=0`` kill-switch is set.  Prefer the
    :func:`trace` context manager; this exists for long-lived embedders.
    """
    global _active
    if recorder is not None and trace_kill_switch():
        return NullRecorder()
    _active = recorder
    return recorder


class _TracingBlock:
    """Context manager form of recorder installation (re-entrant: a nested
    block reuses the outer recorder rather than replacing it)."""

    def __init__(self) -> None:
        self._installed = False

    def __enter__(self) -> TraceRecorder | NullRecorder:
        global _active
        if trace_kill_switch():
            return NullRecorder()
        if _active is not None:
            return _active
        _active = TraceRecorder()
        self._installed = True
        return _active

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        if self._installed:
            if _active is not None:
                _active.finish()
            _active = None
        return False


def trace() -> _TracingBlock:
    """Record spans for the duration of the block::

        with trace() as recorder:
            run_nightly_maintenance(warehouse)
        print(format_span_tree(recorder.root))

    Under ``REPRO_TRACE=0`` the block yields a :class:`NullRecorder` and
    records nothing.  Nested blocks share the outermost recorder.
    """
    return _TracingBlock()


# Ambient tracing: REPRO_TRACE=1 turns the whole process on at import time,
# which is how the CI overhead smoke compares traced vs untraced benchmark
# runs without modifying the benchmark.
if os.environ.get("REPRO_TRACE", "").strip() == "1":  # pragma: no cover
    _active = TraceRecorder()
