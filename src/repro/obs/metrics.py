"""Process-wide maintenance metrics: counters, gauges, histograms.

Where spans (:mod:`repro.obs.tracing`) answer "where did *this* run's time
go", metrics accumulate across runs: total rows scanned by propagate,
refresh actions by kind, undo-log entries written, rollbacks taken, chunk
sizes seen by the parallel aggregation engine, executor queue waits.

The registry is a plain process-wide object — no background threads, no
export protocol — because the consumers are the ``repro trace`` CLI, the
benchmark JSON, and tests.  Instrumented code only touches the registry
while tracing is enabled (see :func:`repro.obs.tracing.enabled`), so the
benchmark path stays metric-free when tracing is off.

Metric names are dotted strings; the canonical set emitted by the engine
is documented in ``docs/api_guide.md`` §Observability.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = [
    "BUCKET_BOUNDS",
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "registry",
    "set_registry",
]


def metric_key(name: str, labels: dict[str, Any] | None) -> str:
    """The registry key for a metric: the bare name, or the name plus a
    canonical (sorted) rendering of its labels.  Two calls with the same
    name and labels always return the same live metric object."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any] | None = None):
        self.name = name
        self.labels: dict[str, Any] | None = dict(labels) if labels else None
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A value that goes up and down (e.g. live undo-log length)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any] | None = None):
        self.name = name
        self.labels: dict[str, Any] | None = dict(labels) if labels else None
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def dec(self, n: int | float = 1) -> None:
        self.value -= n

    def snapshot(self) -> int | float:
        return self.value


#: Histogram bucket upper bounds: powers of four from 1 up, which spans
#: chunk sizes (1..10^6 rows) and sub-second queue waits equally well once
#: waits are recorded in microseconds-as-floats.
_BUCKET_BOUNDS = tuple(4 ** k for k in range(12))

#: Public view of the histogram bucket upper bounds (exporters need them).
BUCKET_BOUNDS = _BUCKET_BOUNDS

#: Bucket upper bounds for query-latency histograms, in *seconds*.  The
#: default power-of-four buckets start at 1, which collapses every
#: sub-second query into one bucket; these follow the conventional
#: Prometheus latency ladder from 100µs to 10s instead.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Bucket upper bounds for ingest→publish visibility lag, in seconds.
#: Much wider than the query-latency ladder: under continuous maintenance
#: a batch becomes queryable in milliseconds, but a deferred batch
#: legitimately waits minutes-to-hours for its nightly window.
LAG_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0, 900.0, 3600.0, 14400.0, 86400.0,
)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max.

    Buckets are cumulative-style upper bounds (``value <= bound``), by
    default powers of four plus an overflow bucket — enough resolution to
    see whether chunk sizes are balanced or queue waits are bimodal
    without configuring anything.  Callers measuring sub-second latencies
    pass explicit *bounds* (e.g. :data:`LATENCY_BUCKETS_S`).
    """

    __slots__ = (
        "name", "labels", "count", "total", "min", "max", "buckets",
        "bounds",
    )

    def __init__(self, name: str, labels: dict[str, Any] | None = None,
                 bounds: tuple[float, ...] | None = None):
        self.name = name
        self.labels: dict[str, Any] | None = dict(labels) if labels else None
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else _BUCKET_BOUNDS
        )
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise ValueError(
                f"histogram {name!r}: bucket bounds must be strictly "
                f"increasing, got {self.bounds}"
            )
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[position] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative buckets: ``(upper_bound, count of
        observations <= upper_bound)``, ending with ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, in_bucket in zip(self.bounds, self.buckets):
            running += in_bucket
            out.append((float(bound), running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> float | None:
        """Estimate the *q*-quantile (0..1) from the bucket counts.

        Linear interpolation inside the bucket that holds the target
        rank, clamped by the observed ``min``/``max`` so the estimate
        never leaves the observed range.  ``None`` before the first
        observation.  Exact-from-samples percentiles belong to callers
        that kept the samples; this is the scrape-time estimate.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = q * self.count
        running = 0
        lower = self.min if self.min is not None else 0.0
        for bound, in_bucket in zip(self.bounds, self.buckets):
            if not in_bucket:
                continue
            if running + in_bucket >= rank:
                upper = min(bound, self.max if self.max is not None else bound)
                fraction = (rank - running) / in_bucket
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            running += in_bucket
            lower = max(lower, bound)
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Create-on-first-use registry of named metrics; thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str,
                labels: dict[str, Any] | None = None) -> Counter:
        key = metric_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, labels)
            return metric

    def gauge(self, name: str,
              labels: dict[str, Any] | None = None) -> Gauge:
        key = metric_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, labels)
            return metric

    def histogram(self, name: str,
                  labels: dict[str, Any] | None = None,
                  bounds: tuple[float, ...] | None = None) -> Histogram:
        """The named histogram; *bounds* applies only on first creation
        (the live metric keeps the bounds it was born with)."""
        key = metric_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(
                    name, labels, bounds=bounds
                )
            return metric

    def all_metrics(self) -> tuple[list[Counter], list[Gauge], list[Histogram]]:
        """Name-sorted live metric objects (exporters walk these)."""
        with self._lock:
            return (
                [self._counters[k] for k in sorted(self._counters)],
                [self._gauges[k] for k in sorted(self._gauges)],
                [self._histograms[k] for k in sorted(self._histograms)],
            )

    def counter_value(self, name: str,
                      labels: dict[str, Any] | None = None) -> int | float:
        """The counter's value, 0 when it was never touched."""
        with self._lock:
            metric = self._counters.get(metric_key(name, labels))
        return metric.value if metric is not None else 0

    def snapshot(self) -> dict[str, Any]:
        """All metrics as one nested plain-data dict."""
        with self._lock:
            return {
                "counters": {
                    name: metric.snapshot()
                    for name, metric in sorted(self._counters.items())
                },
                "gauges": {
                    name: metric.snapshot()
                    for name, metric in sorted(self._gauges.items())
                },
                "histograms": {
                    name: metric.snapshot()
                    for name, metric in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every metric (tests; the CLI resets before a traced run)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry.
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _registry
    previous = _registry
    _registry = new
    return previous
