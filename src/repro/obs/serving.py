"""Serving-path telemetry: request ids, slow-query sampling, staleness
SLOs, epoch gauges, and the embedded HTTP exporter.

The maintenance side of the warehouse has deep observability (spans,
metrics, the run ledger, audits); this module gives the *serving* side —
:class:`repro.serve.QueryServer` answering concurrent queries — the same
treatment, built from the view-maintenance literature's two evaluation
axes: query latency and view freshness.

* **Request tracing** — every query gets a process-unique request id at
  submission.  :func:`request_scope` installs it in a thread-local that
  survives the hop onto the server's pool thread, and the router's
  plan/eval spans tag themselves with it, so one request's spans can be
  grouped across threads in an exported trace.
* **Slow-query sampling** — :class:`SlowQuerySampler` keeps the top-k
  slowest queries seen (a bounded min-heap, so memory is O(k) no matter
  the traffic), deterministically: the surviving set depends only on the
  multiset of recorded samples, never on thread interleaving.
* **Staleness SLOs** — per-view freshness gauges (seconds since last
  publish, delta rows pending) and a configurable staleness SLO
  (``REPRO_STALENESS_SLO_S`` or ``QueryServer(staleness_slo_s=...)``);
  queries answered from a view staler than the SLO count
  ``serve.slo_violations``.
* **The exporter** — :class:`MetricsExporter`, a zero-dependency
  ``http.server`` embedding that serves ``/metrics`` (Prometheus 0.0.4
  text), ``/status`` (health JSON), and ``/slow`` (the sampler dump).
  Start it with ``QueryServer(expose_http=port)`` or ``repro
  serve-metrics``.

Unlike the maintenance hot paths, serving metrics record *whenever the
registry is live* — ``REPRO_TRACE`` gates only span emission.  A metrics
endpoint that goes blank because tracing is off is worse than useless;
the per-query cost is a handful of dict operations, negligible next to
evaluating the query itself.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from heapq import heappush, heappushpop
from typing import TYPE_CHECKING, Any

from . import metrics as obs_metrics
from .export import prometheus_text

if TYPE_CHECKING:  # pragma: no cover
    from ..warehouse.catalog import Warehouse

__all__ = [
    "STALENESS_SLO_ENV_VAR",
    "MetricsExporter",
    "SlowQuerySample",
    "SlowQuerySampler",
    "current_request_id",
    "export_serving_gauges",
    "format_top",
    "next_request_id",
    "request_scope",
    "resolve_staleness_slo",
    "status_payload",
]

#: Environment variable supplying the default staleness SLO, in seconds.
STALENESS_SLO_ENV_VAR = "REPRO_STALENESS_SLO_S"


# ----------------------------------------------------------------------
# Request ids
# ----------------------------------------------------------------------

_request_ids = itertools.count(1)
_request_local = threading.local()


def next_request_id() -> int:
    """Allocate a process-unique serving request id (monotonic)."""
    return next(_request_ids)


def current_request_id() -> int | None:
    """The request id installed on this thread, or ``None`` outside one."""
    return getattr(_request_local, "request_id", None)


class request_scope:
    """Install *request_id* as the calling thread's current request.

    The server assigns the id at submission time and enters this scope on
    the pool thread that evaluates the query, so router/eval spans opened
    anywhere under it can tag themselves with the originating request.
    Scopes nest (re-entrant queries restore the outer id on exit).
    """

    __slots__ = ("_request_id", "_previous")

    def __init__(self, request_id: int):
        self._request_id = request_id
        self._previous: int | None = None

    def __enter__(self) -> int:
        self._previous = getattr(_request_local, "request_id", None)
        _request_local.request_id = self._request_id
        return self._request_id

    def __exit__(self, exc_type, exc, tb) -> bool:
        _request_local.request_id = self._previous
        return False


# ----------------------------------------------------------------------
# Slow-query sampling
# ----------------------------------------------------------------------

@dataclass(frozen=True, order=True)
class SlowQuerySample:
    """One sampled query, ordered by (latency, request id).

    The ordering is the sampler's survival key: comparing ``seconds``
    first and ``request_id`` second makes eviction a total order with no
    ties, which is what keeps the surviving top-k independent of the
    order concurrent threads happened to record in.
    """

    seconds: float
    request_id: int
    fact: str = field(compare=False)
    source: str = field(compare=False)        #: routed view, or "base"
    epoch: int | None = field(compare=False)
    cache: str = field(compare=False)         #: "hit" / "miss" / "bypass"
    ts: float = field(compare=False)

    def as_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "seconds": round(self.seconds, 9),
            "fact": self.fact,
            "source": self.source,
            "epoch": self.epoch,
            "cache": self.cache,
            "ts": self.ts,
        }


class SlowQuerySampler:
    """A bounded top-k-by-latency sample of served queries.

    A min-heap of at most *capacity* samples under one lock: recording is
    O(log k) when the sample displaces the current minimum and O(1)
    (one comparison) when it is too fast to qualify — cheap enough to run
    on every query.  The retained set is exactly the k largest samples by
    ``(seconds, request_id)`` over everything recorded, regardless of the
    interleaving of recording threads.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError(
                f"sampler capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._heap: list[SlowQuerySample] = []
        self._recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def recorded(self) -> int:
        """Total samples offered over the sampler's lifetime."""
        with self._lock:
            return self._recorded

    def record(self, sample: SlowQuerySample) -> None:
        with self._lock:
            self._recorded += 1
            if len(self._heap) < self.capacity:
                heappush(self._heap, sample)
            elif sample > self._heap[0]:
                heappushpop(self._heap, sample)

    def samples(self) -> list[SlowQuerySample]:
        """The retained samples, slowest first."""
        with self._lock:
            return sorted(self._heap, reverse=True)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self._recorded = 0

    def dump(self) -> list[dict[str, Any]]:
        """The retained samples as plain dicts, slowest first."""
        return [sample.as_dict() for sample in self.samples()]

    def write_jsonl(self, path) -> Any:
        """Export the retained samples as JSON lines (atomic write)."""
        # Imported here, not at module level: repro.bench sits above the
        # drivers that pull obs in (same layering note as obs.export).
        from ..bench.reporting import atomic_write_text

        lines = [json.dumps(record, sort_keys=True)
                 for record in self.dump()]
        return atomic_write_text(path, "\n".join(lines) + "\n")


# ----------------------------------------------------------------------
# Staleness SLO
# ----------------------------------------------------------------------

def resolve_staleness_slo(value: float | None = None) -> float | None:
    """The staleness SLO in seconds: an explicit *value* wins, otherwise
    ``REPRO_STALENESS_SLO_S`` from the environment, otherwise ``None``
    (no SLO — violations are never counted)."""
    if value is not None:
        if value < 0:
            raise ValueError(f"staleness SLO must be >= 0, got {value}")
        return value
    raw = os.environ.get(STALENESS_SLO_ENV_VAR, "").strip()
    if not raw:
        return None
    slo = float(raw)
    if slo < 0:
        raise ValueError(
            f"{STALENESS_SLO_ENV_VAR} must be >= 0, got {raw!r}"
        )
    return slo


# ----------------------------------------------------------------------
# Gauge export and the /status payload
# ----------------------------------------------------------------------

def export_serving_gauges(
    warehouse: "Warehouse",
    metrics: obs_metrics.MetricsRegistry | None = None,
    now: float | None = None,
) -> None:
    """Refresh the per-view serving gauges from live warehouse state.

    Called on every ``/metrics`` scrape (and usable directly): per view,
    staleness seconds since the last publish/refresh, pending delta rows
    (insertions + deletions deferred against its fact table), the
    change-set lineage backlog (``lineage.pending_batches`` and
    ``lineage.oldest_pending_batch_age_s`` — batches staged but not yet in
    any published epoch of the view), and the epoch lifecycle gauges via
    :meth:`~repro.views.materialize.MaterializedView.collect_epochs`.
    """
    registry = metrics if metrics is not None else obs_metrics.registry()
    now = now if now is not None else time.time()
    for name in sorted(warehouse.views):
        view = warehouse.views[name]
        labels = {"view": name}
        pending = warehouse.pending_changes(view.definition.fact.name)
        registry.gauge("serve.staleness_seconds", labels=labels).set(
            round(view.freshness.staleness_seconds(now), 6)
        )
        registry.gauge("serve.pending_delta_rows", labels=labels).set(
            len(pending.insertions) + len(pending.deletions)
        )
        pending_batches = view.lineage.pending_against(pending.lineage)
        registry.gauge("lineage.pending_batches", labels=labels).set(
            len(pending_batches)
        )
        registry.gauge(
            "lineage.oldest_pending_batch_age_s", labels=labels
        ).set(round(pending_batches.oldest_age_s(now), 6))
        view.collect_epochs(metrics=registry)


def status_payload(
    warehouse: "Warehouse",
    server=None,
    metrics: obs_metrics.MetricsRegistry | None = None,
    now: float | None = None,
) -> dict[str, Any]:
    """The health JSON the ``/status`` endpoint serves.

    One record per view (rows, epoch lifecycle, freshness, pending
    pressure) from :func:`repro.warehouse.health.warehouse_status`
    (certificate verification skipped — a scrape must stay cheap), plus a
    ``serving`` block with the cumulative serving counters and latency
    quantile estimates so a poller like ``repro top`` can derive QPS from
    successive scrapes.
    """
    from ..warehouse.health import warehouse_status

    registry = metrics if metrics is not None else obs_metrics.registry()
    now = now if now is not None else time.time()
    views: dict[str, Any] = {}
    for status in warehouse_status(
        warehouse, now=now, verify_certificates=False
    ):
        view = warehouse.views[status.name]
        epochs = view.collect_epochs(metrics=registry)
        pending_batches = view.lineage.pending_against(
            warehouse.pending_changes(status.fact).lineage
        )
        lag = registry.histogram(
            "lineage.visibility_lag_s",
            labels={"view": status.name},
            bounds=obs_metrics.LAG_BUCKETS_S,
        )
        lineage_section = view.lineage.as_dict()
        lineage_section["pending_batches"] = len(pending_batches)
        lineage_section["oldest_pending_batch_age_s"] = round(
            pending_batches.oldest_age_s(now), 6
        )
        lineage_section["visibility_lag"] = {
            "count": lag.count,
            "p50_s": lag.quantile(0.50),
            "p95_s": lag.quantile(0.95),
            "p99_s": lag.quantile(0.99),
            "max_s": lag.max,
        }
        views[status.name] = {
            "fact": status.fact,
            "rows": status.rows,
            "epoch": epochs.current,
            "epochs_retained": epochs.retained,
            "epochs_collected": epochs.collected,
            "epoch_watermark": epochs.watermark,
            "staleness_seconds": round(status.staleness_seconds, 6),
            "pending_rows": (
                status.pending_insertions + status.pending_deletions
            ),
            "refresh_count": status.freshness.refresh_count,
            "queries": registry.counter_value(
                "serve.queries_by_source", labels={"source": status.name}
            ),
            "lineage": lineage_section,
        }
    latency = registry.histogram(
        "serve.latency_s", bounds=obs_metrics.LATENCY_BUCKETS_S
    )
    payload: dict[str, Any] = {
        "ts": now,
        "views": views,
        "serving": {
            "queries": registry.counter_value("serve.queries"),
            "cache_hits": registry.counter_value("serve.cache_hits"),
            "cache_misses": registry.counter_value("serve.cache_misses"),
            "base_fallbacks": registry.counter_value("serve.base_fallbacks"),
            "slo_violations": registry.counter_value("serve.slo_violations"),
            "latency": {
                "count": latency.count,
                "p50_s": latency.quantile(0.50),
                "p95_s": latency.quantile(0.95),
                "p99_s": latency.quantile(0.99),
                "max_s": latency.max,
            },
        },
    }
    if server is not None:
        payload["server"] = server.stats.snapshot()
    return payload


def _fmt_ms(seconds: float | None) -> str:
    return f"{seconds * 1e3:.2f}" if seconds is not None else "-"


def format_top(
    payload: dict[str, Any], previous: dict[str, Any] | None = None
) -> str:
    """One ``repro top`` frame from a ``/status`` payload.

    Rates (overall and per-view QPS) are derived from the counter deltas
    against *previous* — the prior frame's payload — so the function stays
    pure: same two payloads, same frame, no clocks read.
    """
    serving = payload["serving"]
    latency = serving["latency"]
    interval = (
        payload["ts"] - previous["ts"]
        if previous is not None and payload["ts"] > previous["ts"]
        else None
    )

    def rate(current: float, before: float) -> str:
        if interval is None:
            return "-"
        return f"{max(0.0, current - before) / interval:,.0f}"

    prev_serving = previous["serving"] if previous is not None else {}
    probes = serving["cache_hits"] + serving["cache_misses"]
    hit_rate = serving["cache_hits"] / probes if probes else 0.0
    lines = [
        f"queries {serving['queries']:>10,}   "
        f"qps {rate(serving['queries'], prev_serving.get('queries', 0)):>8}   "
        f"cache {hit_rate:6.1%}   "
        f"slo_viol {serving['slo_violations']:,}",
        f"latency ms  p50 {_fmt_ms(latency['p50_s'])}  "
        f"p95 {_fmt_ms(latency['p95_s'])}  "
        f"p99 {_fmt_ms(latency['p99_s'])}  "
        f"max {_fmt_ms(latency['max_s'])}  "
        f"({latency['count']:,} observed)",
        "",
    ]
    header = (
        f"{'view':<14} {'rows':>8} {'epoch':>5} {'kept':>4} {'mark':>4} "
        f"{'stale_s':>8} {'pending':>8} {'oldest_s':>8} {'queries':>9} "
        f"{'qps':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    prev_views = previous["views"] if previous is not None else {}
    for name in sorted(payload["views"]):
        view = payload["views"][name]
        before = prev_views.get(name, {})
        # Tolerate payloads from exporters predating the lineage section.
        lineage = view.get("lineage") or {}
        oldest = lineage.get("oldest_pending_batch_age_s")
        oldest_cell = "-" if oldest is None else f"{oldest:.2f}"
        lines.append(
            f"{name:<14} {view['rows']:>8,} {view['epoch']:>5} "
            f"{view['epochs_retained']:>4} {view['epoch_watermark']:>4} "
            f"{view['staleness_seconds']:>8.2f} {view['pending_rows']:>8,} "
            f"{oldest_cell:>8} "
            f"{view['queries']:>9,} "
            f"{rate(view['queries'], before.get('queries', 0)):>8}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The embedded HTTP exporter
# ----------------------------------------------------------------------

#: Content type mandated by the Prometheus 0.0.4 text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsExporter:
    """A zero-dependency HTTP exporter over the metrics registry.

    Serves three endpoints from a daemon thread:

    * ``/metrics`` — the registry in the Prometheus text format, with the
      per-view serving gauges refreshed at scrape time;
    * ``/status`` — :func:`status_payload` as JSON;
    * ``/slow`` — the slow-query sampler dump as JSON.

    Bind to port 0 (the default) for an ephemeral port; the bound port is
    available as :attr:`port` after :meth:`start`.  The exporter holds
    only references the caller already owns (warehouse, sampler,
    registry) and never mutates warehouse data.
    """

    def __init__(
        self,
        warehouse: "Warehouse | None" = None,
        sampler: SlowQuerySampler | None = None,
        server=None,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ):
        self.warehouse = warehouse
        self.sampler = sampler
        self.query_server = server
        self.host = host
        self._requested_port = port
        self._metrics = metrics
        self._httpd = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "MetricsExporter":
        """Bind and start serving; returns ``self`` for chaining."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        if self._httpd is not None:
            return self
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            # One exporter, many sockets: keep the handler stateless.

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/metrics":
                        body = exporter.render_metrics().encode("utf-8")
                        content_type = PROMETHEUS_CONTENT_TYPE
                    elif path == "/status":
                        body = exporter.render_status().encode("utf-8")
                        content_type = "application/json"
                    elif path == "/slow":
                        body = exporter.render_slow().encode("utf-8")
                        content_type = "application/json"
                    else:
                        self.send_error(404, "unknown endpoint")
                        return
                except Exception as failure:  # surfaced as a 500, not a
                    self.send_error(500, str(failure))   # dead connection
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                pass   # scrapes must not spam the embedding process

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._httpd = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("exporter is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- endpoint bodies (also the in-process API for tests/CLI) -------

    def _registry(self) -> obs_metrics.MetricsRegistry:
        return (
            self._metrics if self._metrics is not None
            else obs_metrics.registry()
        )

    def render_metrics(self) -> str:
        """The ``/metrics`` body: scrape-time gauge refresh + 0.0.4 text."""
        registry = self._registry()
        if self.warehouse is not None:
            export_serving_gauges(self.warehouse, metrics=registry)
        return prometheus_text(registry)

    def render_status(self) -> str:
        """The ``/status`` body."""
        if self.warehouse is None:
            snapshot = {"ts": time.time(),
                        "metrics": self._registry().snapshot()}
            return json.dumps(snapshot, sort_keys=True)
        return json.dumps(
            status_payload(
                self.warehouse, server=self.query_server,
                metrics=self._registry(),
            ),
            sort_keys=True,
        )

    def render_slow(self) -> str:
        """The ``/slow`` body."""
        samples = self.sampler.dump() if self.sampler is not None else []
        return json.dumps(samples, sort_keys=True)
