"""Incremental consistency certificates and integrity events.

The paper's Figure 7 / Theorem 5.1 claim is an *equivalence*: after
propagate + refresh, every summary table equals what full
rematerialization would have produced.  This module makes that claim an
observable quantity instead of an assumption:

* :func:`row_digest` / :func:`rows_certificate` — an order-independent
  64-bit checksum over canonicalised ``(group-key, aggregate-values)``
  tuples.  The combiner is modular addition, so the certificate is
  *invertible*: removing a row subtracts its digest, which is what lets
  refresh maintain it in O(|summary-delta|) rather than O(|view|).
* :class:`ViewCertificate` — the live, incrementally maintained
  certificate of one summary table.  It is a table mutation observer
  (:meth:`repro.relational.table.Table.attach_observer`), so every
  mutation path — both refresh variants, atomic rollback through the
  undo log, rematerialisation — keeps it consistent without the callers
  knowing it exists.
* :class:`ViewFreshness` — per-view freshness: last refresh timestamp,
  run id, kind, and cumulative delta rows applied.
* :class:`IntegrityEvent` — one alertable integrity finding, with a
  severity, fed to the metrics registry and the run ledger by the audit
  driver (:mod:`repro.warehouse.health`).

Certificates never touch the tuple-access accounting
(:mod:`repro.relational.stats`): they are metadata maintenance, not data
access, and charging them would skew the cost model's
predicted-vs-actual comparisons.  Their work is visible instead through
the dedicated ``cert_digests`` span counter and the
``integrity.cert_digests`` metric.

Kill-switch: ``REPRO_CERTIFICATES=0`` disables certificate maintenance
entirely (views then carry ``certificate = None`` and audits fall back
to recompute-only checks).
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from .tracing import current_span

__all__ = [
    "CERTIFICATE_ENV_VAR",
    "CERT_MASK",
    "IntegrityEvent",
    "SEVERITIES",
    "ViewCertificate",
    "ViewFreshness",
    "certificates_enabled",
    "record_events",
    "row_digest",
    "rows_certificate",
]

#: Environment variable disabling certificate maintenance when set to "0".
CERTIFICATE_ENV_VAR = "REPRO_CERTIFICATES"

#: Certificates live in the 64-bit ring Z/2^64 (addition mod 2^64).
CERT_MASK = (1 << 64) - 1

_PACK_LEN = struct.Struct("<I").pack


def certificates_enabled() -> bool:
    """Whether new views should maintain certificates (the kill-switch)."""
    return os.environ.get(CERTIFICATE_ENV_VAR, "").strip() != "0"


def _canonical_bytes(value: Any) -> bytes:
    """One cell canonicalised to bytes, type-tagged.

    Numeric canonicalisation matters: refresh arithmetic can legitimately
    produce ``5.0`` where recomputation produces ``5`` — SQL semantics
    treat them as the same aggregate value, so they must digest
    identically.  Integral floats are therefore hashed in integer form.
    ``bool`` is hashed as its integer value (Python bools compare equal
    to 0/1 and can appear in either form after arithmetic).
    """
    if value is None:
        return b"n"
    if isinstance(value, bool):
        return b"i" + str(int(value)).encode()
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, float):
        if value == value and value not in (float("inf"), float("-inf")) \
                and value == int(value):
            return b"i" + str(int(value)).encode()
        return b"f" + repr(value).encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    return b"o" + repr(value).encode("utf-8")


def row_digest(row: Iterable[Any]) -> int:
    """One row's 64-bit digest (order of *cells* matters; order of rows
    in the table does not, because digests combine by addition)."""
    hasher = hashlib.blake2b(digest_size=8)
    for value in row:
        cell = _canonical_bytes(value)
        hasher.update(_PACK_LEN(len(cell)))
        hasher.update(cell)
    return int.from_bytes(hasher.digest(), "little")


def rows_certificate(rows: Iterable[Iterable[Any]]) -> int:
    """The order-independent certificate of a collection of rows."""
    total = 0
    for row in rows:
        total += row_digest(row)
    return total & CERT_MASK


class ViewCertificate:
    """The incrementally maintained certificate of one summary table.

    Attach to the view's stored table as a mutation observer; the value
    then tracks the table's live contents exactly: an insert adds the
    row's digest, a delete subtracts it, an update does both.  Each
    observer callback charges the ``cert_digests`` counter on the active
    span — the proof obligation that certificate maintenance is
    O(|summary-delta|) (counters scale with rows touched, never with the
    view size).
    """

    __slots__ = ("value", "digests_computed")

    def __init__(self, value: int = 0):
        self.value = value & CERT_MASK
        #: Total digests computed over this certificate's lifetime (the
        #: O(|delta|) accounting the acceptance tests assert on).
        self.digests_computed = 0

    @classmethod
    def from_rows(cls, rows: Iterable[Iterable[Any]]) -> "ViewCertificate":
        certificate = cls()
        total = 0
        count = 0
        for row in rows:
            total += row_digest(row)
            count += 1
        certificate.value = total & CERT_MASK
        certificate.digests_computed = count
        return certificate

    def _charge(self, n: int) -> None:
        self.digests_computed += n
        span = current_span()
        if span is not None:
            span.add("cert_digests", n)

    # -- table observer protocol --------------------------------------

    def row_inserted(self, row: tuple) -> None:
        self.value = (self.value + row_digest(row)) & CERT_MASK
        self._charge(1)

    def row_deleted(self, row: tuple) -> None:
        self.value = (self.value - row_digest(row)) & CERT_MASK
        self._charge(1)

    def row_updated(self, old_row: tuple, new_row: tuple) -> None:
        self.value = (
            self.value - row_digest(old_row) + row_digest(new_row)
        ) & CERT_MASK
        self._charge(2)

    def truncated(self) -> None:
        self.value = 0

    # -- presentation --------------------------------------------------

    @property
    def hex(self) -> str:
        return f"{self.value:016x}"

    def __repr__(self) -> str:
        return f"ViewCertificate(0x{self.hex})"


@dataclass
class ViewFreshness:
    """Per-view freshness: when (and by which run) it was last refreshed.

    ``staleness_seconds`` measures time since the last refresh — or since
    the view was materialised, which counts as fresh: a freshly built
    view equals recomputation by construction.
    """

    created_ts: float = field(default_factory=time.time)
    last_refresh_ts: float | None = None
    last_refresh_run_id: int | None = None
    last_refresh_kind: str | None = None
    refresh_count: int = 0
    #: Cumulative summary-delta rows applied across all refreshes.
    applied_delta_rows: int = 0

    def mark_refreshed(self, delta_rows: int = 0,
                       ts: float | None = None) -> None:
        """Record one successful refresh (called by ``refresh`` and
        ``refresh_atomically`` after the delta is fully applied)."""
        self.last_refresh_ts = ts if ts is not None else time.time()
        self.refresh_count += 1
        self.applied_delta_rows += delta_rows

    def note_run(self, run_id: int | None, kind: str | None) -> None:
        """Attach the ledger run id / kind of the driver that refreshed
        this view (stamped after the ledger append assigns the id)."""
        self.last_refresh_run_id = run_id
        self.last_refresh_kind = kind

    def staleness_seconds(self, now: float | None = None) -> float:
        now = now if now is not None else time.time()
        anchor = self.last_refresh_ts
        if anchor is None:
            anchor = self.created_ts
        return max(0.0, now - anchor)

    def as_dict(self) -> dict[str, Any]:
        return {
            "last_refresh_ts": self.last_refresh_ts,
            "last_refresh_run_id": self.last_refresh_run_id,
            "last_refresh_kind": self.last_refresh_kind,
            "refresh_count": self.refresh_count,
            "applied_delta_rows": self.applied_delta_rows,
        }


#: Integrity event severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class IntegrityEvent:
    """One alertable integrity finding."""

    severity: str
    kind: str
    view: str
    message: str
    ts: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "view": self.view,
            "message": self.message,
            "ts": self.ts,
        }


def record_events(events: Iterable[IntegrityEvent], metrics=None) -> None:
    """Feed integrity events to the metrics registry.

    Unlike the engine hot paths this records unconditionally — audits are
    explicit operator actions, and a detected corruption must never be
    dropped because tracing happened to be off.
    """
    # Lazy: repro.obs.metrics is cheap, but keep audit importable without
    # dragging the registry in at module-import time.
    from . import metrics as obs_metrics

    registry = metrics if metrics is not None else obs_metrics.registry()
    for event in events:
        registry.counter("integrity.events",
                         labels={"severity": event.severity}).inc()
        registry.counter("integrity.findings",
                         labels={"kind": event.kind,
                                 "view": event.view}).inc()
