"""The concrete aggregate functions: COUNT(*), COUNT(e), SUM, MIN, MAX, AVG.

The Table 1 derivations (paper, Section 4.1.1) are implemented by each
class's :meth:`insertion_source` / :meth:`deletion_source`:

===============  ====================================  ====================================
function         prepare-insertions source             prepare-deletions source
===============  ====================================  ====================================
``COUNT(*)``     ``1``                                 ``-1``
``COUNT(expr)``  ``CASE WHEN expr IS NULL              ``CASE WHEN expr IS NULL
                 THEN 0 ELSE 1 END``                   THEN 0 ELSE -1 END``
``SUM(expr)``    ``expr``                              ``-expr``
``MIN(expr)``    ``expr``                              ``expr``
``MAX(expr)``    ``expr``                              ``expr``
===============  ====================================  ====================================

``AVG`` is algebraic and is never materialised directly; the view layer
stores ``SUM(e)`` and ``COUNT(e)`` and exposes the quotient (paper,
Section 3.1).  ``MEDIAN`` and ``COUNT(DISTINCT e)`` are provided only so the
validation path has something concrete to reject.
"""

from __future__ import annotations

from ..errors import UnsupportedAggregateError
from ..relational.aggregation import (
    CountNonNullReducer,
    CountRowsReducer,
    MaxReducer,
    MinReducer,
    Reducer,
    SumReducer,
)
from ..relational.expressions import Case, Expression, Literal, Neg
from .base import AggregateClass, AggregateFunction, SelfMaintainability


class CountStar(AggregateFunction):
    """``COUNT(*)`` — the linchpin of deletion self-maintainability."""

    kind = "count_star"
    aggregate_class = AggregateClass.DISTRIBUTIVE

    def __init__(self) -> None:
        super().__init__(argument=None)

    def render(self) -> str:
        return "COUNT(*)"

    def base_reducer(self) -> Reducer:
        return CountRowsReducer()

    def insertion_source(self) -> Expression:
        return Literal(1)

    def deletion_source(self) -> Expression:
        return Literal(-1)

    def delta_reducer(self) -> Reducer:
        return SumReducer()

    def self_maintainability(self) -> SelfMaintainability:
        return SelfMaintainability(on_insert=True, on_delete=True)

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return ()


class Count(AggregateFunction):
    """``COUNT(expr)`` — counts non-null values of *expr*."""

    kind = "count"
    aggregate_class = AggregateClass.DISTRIBUTIVE

    def __init__(self, argument: Expression):
        super().__init__(argument=argument)

    def render(self) -> str:
        return f"COUNT({self.argument.render()})"

    def base_reducer(self) -> Reducer:
        return CountNonNullReducer()

    def insertion_source(self) -> Expression:
        return Case([(self.argument.is_null(), Literal(0))], Literal(1))

    def deletion_source(self) -> Expression:
        return Case([(self.argument.is_null(), Literal(0))], Literal(-1))

    def delta_reducer(self) -> Reducer:
        return SumReducer()

    def self_maintainability(self) -> SelfMaintainability:
        return SelfMaintainability(
            on_insert=True, on_delete=True, on_delete_requires=("count_star",)
        )

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return (CountStar(),)


class Sum(AggregateFunction):
    """``SUM(expr)`` — null-skipping sum."""

    kind = "sum"
    aggregate_class = AggregateClass.DISTRIBUTIVE

    def __init__(self, argument: Expression):
        super().__init__(argument=argument)

    def render(self) -> str:
        return f"SUM({self.argument.render()})"

    def base_reducer(self) -> Reducer:
        return SumReducer()

    def insertion_source(self) -> Expression:
        return self.argument

    def deletion_source(self) -> Expression:
        return Neg(self.argument)

    def delta_reducer(self) -> Reducer:
        return SumReducer()

    def self_maintainability(self) -> SelfMaintainability:
        # With nulls in the aggregated column, SUM needs both COUNT(*) and
        # COUNT(e); without nulls, COUNT(*) suffices (paper, Section 3.1).
        return SelfMaintainability(
            on_insert=True, on_delete=True,
            on_delete_requires=("count_star", "count"),
        )

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return (CountStar(), Count(self.argument))


class Min(AggregateFunction):
    """``MIN(expr)`` — not self-maintainable w.r.t. deletions."""

    kind = "min"
    aggregate_class = AggregateClass.DISTRIBUTIVE

    def __init__(self, argument: Expression):
        super().__init__(argument=argument)

    def render(self) -> str:
        return f"MIN({self.argument.render()})"

    def base_reducer(self) -> Reducer:
        return MinReducer()

    def insertion_source(self) -> Expression:
        return self.argument

    def deletion_source(self) -> Expression:
        return self.argument

    def delta_reducer(self) -> Reducer:
        return MinReducer()

    def self_maintainability(self) -> SelfMaintainability:
        return SelfMaintainability(on_insert=True, on_delete=False)

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return (CountStar(), Count(self.argument))


class Max(AggregateFunction):
    """``MAX(expr)`` — not self-maintainable w.r.t. deletions."""

    kind = "max"
    aggregate_class = AggregateClass.DISTRIBUTIVE

    def __init__(self, argument: Expression):
        super().__init__(argument=argument)

    def render(self) -> str:
        return f"MAX({self.argument.render()})"

    def base_reducer(self) -> Reducer:
        return MaxReducer()

    def insertion_source(self) -> Expression:
        return self.argument

    def deletion_source(self) -> Expression:
        return self.argument

    def delta_reducer(self) -> Reducer:
        return MaxReducer()

    def self_maintainability(self) -> SelfMaintainability:
        return SelfMaintainability(on_insert=True, on_delete=False)

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return (CountStar(), Count(self.argument))


class Avg(AggregateFunction):
    """``AVG(expr)`` — algebraic; stored as ``SUM(expr)`` / ``COUNT(expr)``.

    The view layer (see
    :meth:`repro.views.definition.SummaryViewDefinition.resolved`) replaces
    an ``AVG`` output with its two distributive components and records the
    quotient as a derived (virtual) output.
    """

    kind = "avg"
    aggregate_class = AggregateClass.ALGEBRAIC

    def __init__(self, argument: Expression):
        super().__init__(argument=argument)

    def render(self) -> str:
        return f"AVG({self.argument.render()})"

    def components(self) -> tuple[Sum, Count]:
        """The distributive components AVG decomposes into."""
        return (Sum(self.argument), Count(self.argument))

    def base_reducer(self) -> Reducer:
        raise UnsupportedAggregateError(
            "AVG is algebraic and must be decomposed into SUM/COUNT before "
            "materialisation; call .components()"
        )

    insertion_source = base_reducer
    deletion_source = base_reducer
    delta_reducer = base_reducer

    def self_maintainability(self) -> SelfMaintainability:
        return SelfMaintainability(
            on_insert=True, on_delete=True,
            on_delete_requires=("count_star", "count"),
        )

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return (CountStar(), Count(self.argument))


class Median(AggregateFunction):
    """``MEDIAN(expr)`` — holistic; exists only to be rejected."""

    kind = "median"
    aggregate_class = AggregateClass.HOLISTIC

    def __init__(self, argument: Expression):
        super().__init__(argument=argument)

    def render(self) -> str:
        return f"MEDIAN({self.argument.render()})"

    def base_reducer(self) -> Reducer:
        self.ensure_supported()
        raise AssertionError("unreachable")

    insertion_source = base_reducer
    deletion_source = base_reducer
    delta_reducer = base_reducer

    def self_maintainability(self) -> SelfMaintainability:
        return SelfMaintainability(on_insert=False, on_delete=False)

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return ()


class CountDistinct(AggregateFunction):
    """``COUNT(DISTINCT expr)`` — not distributive (paper, Section 3.1).

    Classified holistic here because, like holistic functions, it cannot be
    computed by combining partial results; it exists to exercise the
    rejection path.
    """

    kind = "count_distinct"
    aggregate_class = AggregateClass.HOLISTIC

    def __init__(self, argument: Expression):
        super().__init__(argument=argument)

    def render(self) -> str:
        return f"COUNT(DISTINCT {self.argument.render()})"

    def base_reducer(self) -> Reducer:
        self.ensure_supported()
        raise AssertionError("unreachable")

    insertion_source = base_reducer
    deletion_source = base_reducer
    delta_reducer = base_reducer

    def self_maintainability(self) -> SelfMaintainability:
        return SelfMaintainability(on_insert=False, on_delete=False)

    def companions_for_self_maintenance(self) -> tuple[AggregateFunction, ...]:
        return ()
