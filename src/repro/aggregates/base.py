"""Aggregate-function framework: classification and self-maintainability.

Section 3.1 of the paper classifies aggregate functions (after [GBLP96]) as
*distributive* (computable by combining partial aggregates: COUNT, SUM, MIN,
MAX), *algebraic* (a scalar function of distributive ones: AVG = SUM/COUNT),
or *holistic* (MEDIAN — not supported by the summary-delta method).

Definition 3.1 defines a set of aggregate functions as *self-maintainable*
when their new values are computable from their old values plus the changes
alone.  The key facts the framework encodes:

* every distributive function is self-maintainable w.r.t. insertions;
* ``COUNT(*)`` is self-maintainable w.r.t. deletions, and makes ``COUNT(e)``
  and (absent nulls) ``SUM(e)`` self-maintainable w.r.t. deletions; with
  nulls, ``SUM(e)`` additionally needs ``COUNT(e)``;
* ``MIN``/``MAX`` are *not* self-maintainable w.r.t. deletions and cannot be
  made so — the refresh function detects the at-risk cases and recomputes
  from base data.

Each concrete function (see :mod:`repro.aggregates.standard`) knows how to:

* materialise itself from base rows (a :class:`~repro.relational.aggregation.Reducer`);
* derive its *aggregate-source* expression for the prepare-insertions and
  prepare-deletions views (the paper's Table 1);
* combine prepare-changes rows into a summary-delta value (the *delta
  reducer*: SUM for counts and sums, MIN/MAX for themselves);
* name the companion functions it needs to become self-maintainable
  (Section 5.4's augmentation rules).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import UnsupportedAggregateError
from ..relational.aggregation import Reducer
from ..relational.expressions import Expression


class AggregateClass(enum.Enum):
    """The [GBLP96] classification used throughout the paper."""

    DISTRIBUTIVE = "distributive"
    ALGEBRAIC = "algebraic"
    HOLISTIC = "holistic"


@dataclass(frozen=True)
class SelfMaintainability:
    """Whether a function is self-maintainable w.r.t. each change kind.

    ``on_delete_requires`` lists companion aggregates (by kind) whose
    presence upgrades deletion self-maintainability — e.g. ``SUM(e)``
    becomes deletion-self-maintainable once ``COUNT(*)`` (and, with nulls,
    ``COUNT(e)``) are stored alongside it.
    """

    on_insert: bool
    on_delete: bool
    on_delete_requires: tuple[str, ...] = ()


class AggregateFunction:
    """Base class for the paper-level aggregate functions.

    Subclasses are immutable value objects: two instances compare equal when
    they have the same kind and the same (structurally equal) argument
    expression, which is how lattice-edge construction matches a child
    view's aggregates against a parent's.
    """

    #: Short machine name of the function family ("count_star", "sum", ...).
    kind: str = "?"
    #: The [GBLP96] class of the function.
    aggregate_class: AggregateClass = AggregateClass.DISTRIBUTIVE

    def __init__(self, argument: Expression | None):
        self.argument = argument

    # -- identity --------------------------------------------------------

    def _key(self) -> tuple:
        arg_key = None if self.argument is None else self.argument._key()
        return (self.kind, arg_key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateFunction):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return self.render()

    def render(self) -> str:
        """SQL text, e.g. ``SUM(qty)`` or ``COUNT(*)``."""
        raise NotImplementedError

    def referenced_columns(self) -> frozenset[str]:
        """Columns referenced by the argument (empty for ``COUNT(*)``)."""
        if self.argument is None:
            return frozenset()
        return self.argument.columns()

    # -- materialisation from base rows -----------------------------------

    def base_reducer(self) -> Reducer:
        """Reducer that computes this function from raw base rows."""
        raise NotImplementedError

    # -- the paper's Table 1 ----------------------------------------------

    def insertion_source(self) -> Expression:
        """Aggregate-source expression for the prepare-insertions view."""
        raise NotImplementedError

    def deletion_source(self) -> Expression:
        """Aggregate-source expression for the prepare-deletions view."""
        raise NotImplementedError

    # -- summary-delta computation ------------------------------------------

    def delta_reducer(self) -> Reducer:
        """Reducer that folds prepare-changes sources into a delta value.

        COUNT and SUM deltas are sums of their signed sources; MIN/MAX
        deltas are the min/max over the changed values.
        """
        raise NotImplementedError

    # -- self-maintainability ----------------------------------------------

    def self_maintainability(self) -> SelfMaintainability:
        """Definition 3.1 facts for this function."""
        raise NotImplementedError

    def companions_for_self_maintenance(self) -> tuple["AggregateFunction", ...]:
        """Aggregates that must be stored alongside this one (Section 5.4).

        Every aggregate view gets ``COUNT(*)``; a view computing ``SUM(e)``,
        ``MIN(e)``, or ``MAX(e)`` is further augmented with ``COUNT(e)``.
        The returned companions may duplicate ones already present — the
        view layer deduplicates.
        """
        raise NotImplementedError

    def ensure_supported(self) -> None:
        """Reject functions the summary-delta method cannot maintain."""
        if self.aggregate_class is AggregateClass.HOLISTIC:
            raise UnsupportedAggregateError(
                f"{self.render()} is holistic; the summary-delta method does "
                "not support holistic aggregate functions (paper, Section 3.1)"
            )
