"""Paper-level aggregate functions and their self-maintainability facts."""

from .base import AggregateClass, AggregateFunction, SelfMaintainability
from .standard import (
    Avg,
    Count,
    CountDistinct,
    CountStar,
    Max,
    Median,
    Min,
    Sum,
)

__all__ = [
    "AggregateClass",
    "AggregateFunction",
    "Avg",
    "Count",
    "CountDistinct",
    "CountStar",
    "Max",
    "Median",
    "Min",
    "SelfMaintainability",
    "Sum",
]
