"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figure9 {a,b,c,d}``
    Run one panel of the paper's Figure 9 and print the series table plus
    the shape-claim verdicts.  ``--scale`` shrinks the workload.
``lattice``
    Build the retail warehouse and print the Figure 8 maintenance plan and
    the Figure 5 combined-lattice summary.
``maintain``
    One nightly maintenance run over a synthetic warehouse, with the
    batch-window report and a rematerialisation comparison.
``select``
    HRU greedy view selection over the combined lattice.
``bench-propagate``
    Micro-benchmark of the parallel propagate engine (serial vs compiled
    vs chunked-parallel aggregation, plus level-parallel lattice walks);
    merges results into ``BENCH_propagate.json``.
``trace``
    Run one nightly maintenance over the Figure 9 retail workload under
    the observability layer and print the span tree, the metrics snapshot,
    and the span-derived batch-window split, cross-checked against the
    legacy :class:`~repro.warehouse.batch.BatchWindowClock` report.
    ``--jsonl PATH`` additionally exports the trace as JSON lines.
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def _cmd_figure9(args: argparse.Namespace) -> int:
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    from .bench import (
        check_lattice_helps_propagate,
        check_maintenance_beats_rematerialization,
        format_claims,
        format_panel,
        run_panel,
    )

    panel = run_panel(args.panel)
    print(format_panel(panel))
    print()
    claims = [
        check_maintenance_beats_rematerialization(panel),
        check_lattice_helps_propagate(panel),
    ]
    print(format_claims(claims))
    return 0 if all(claim.holds for claim in claims) else 1


def _cmd_lattice(args: argparse.Namespace) -> int:
    from .lattice import build_lattice_for_views, combined_lattice
    from .workload import RetailConfig, build_retail_warehouse, generate_retail

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    lattice = build_lattice_for_views(warehouse.views_over("pos"))
    print("Maintenance plan (paper, Figure 8):")
    print(lattice.describe())

    combined = combined_lattice([
        data.stores.hierarchy.levels,
        data.items.hierarchy.levels,
        ("date",),
    ])
    print(
        f"\nCombined cube lattice (paper, Figure 5): {len(combined.nodes)} "
        f"candidate views, {len(combined.edges)} derivation edges."
    )
    return 0


def _cmd_maintain(args: argparse.Namespace) -> int:
    from .lattice import maintain_lattice, rematerialize_with_lattice
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        insertion_generating_changes,
        update_generating_changes,
    )

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    views = warehouse.views_over("pos")
    if args.workload == "insert":
        changes = insertion_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )
    else:
        changes = update_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )

    result = maintain_lattice(views, changes)
    print(f"Maintained {len(views)} summary tables over "
          f"{changes.size():,} changes:")
    for name, stats in result.stats.items():
        print(f"  {name:<12} {stats.updated:>6} updated  {stats.inserted:>5} "
              f"inserted  {stats.deleted:>5} deleted  "
              f"{stats.recomputed:>5} recomputed")
    print(f"\n{result.report.summary()}")

    started = time.perf_counter()
    rematerialize_with_lattice(views)
    print(f"(rematerialising instead would have taken "
          f"{time.perf_counter() - started:.3f}s of batch window)")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from .lattice import (
        combined_lattice,
        exact_node_sizes,
        greedy_select,
        grouping_label,
    )
    from .workload import RetailConfig, generate_retail

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    lattice = combined_lattice([
        data.stores.hierarchy.levels,
        data.items.hierarchy.levels,
        ("date",),
    ])
    source = data.pos.join_dimensions(data.pos.table, ["stores", "items"])
    sizes = exact_node_sizes(lattice, source)
    selection = greedy_select(lattice, sizes, view_budget=args.budget)
    order = ["storeID", "city", "region", "itemID", "category", "date"]
    print(f"HRU greedy selection (budget {args.budget} beyond the top view):")
    for step in selection.steps:
        print(f"  {grouping_label(step.node, order):<32} "
              f"size {sizes[step.node]:>8,}  benefit {step.benefit:>12,.0f}")
    print(f"total query cost: {selection.total_cost:,.0f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.propagate import PropagateOptions
    from .obs import (
        format_span_tree,
        registry,
        trace,
        trace_summary,
        write_trace_jsonl,
    )
    from .obs.tracing import trace_kill_switch
    from .warehouse.nightly import run_nightly_maintenance
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        insertion_generating_changes,
        update_generating_changes,
    )

    if trace_kill_switch():
        print(
            "tracing is disabled by REPRO_TRACE=0; "
            "unset it (or set REPRO_TRACE=1) to record spans"
        )
        return 1

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    if args.workload == "insert":
        staged = insertion_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )
    else:
        staged = update_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )
    pending = warehouse.pending_changes("pos")
    for row in staged.insertions.scan():
        pending.insert(row)
    for row in staged.deletions.scan():
        pending.delete(row)

    options = PropagateOptions(
        parallel=args.parallel, level_parallel=args.parallel
    )
    registry().reset()
    with trace() as recorder:
        result = run_nightly_maintenance(warehouse, options=options)
    root = recorder.finish()

    print(format_span_tree(root, max_depth=args.max_depth))
    summary = trace_summary(root, registry())
    window = summary["window"]
    print(
        f"\nbatch window from span tags: "
        f"online {window['online_s']:.3f}s, offline {window['offline_s']:.3f}s"
        f" ({summary['spans']} spans recorded)"
    )
    if "metrics" in summary:
        print("metrics:")
        for name, value in sorted(summary["metrics"]["counters"].items()):
            print(f"  {name:<32} {value:>12,}")
        for name, stats in sorted(summary["metrics"]["histograms"].items()):
            print(
                f"  {name:<32} count={stats['count']:,} "
                f"mean={stats['mean']:.6g} max={stats['max']:.6g}"
            )

    report = result.report
    agrees = True
    for span_total, clock_total, label in (
        (window["online_s"], report.online_seconds, "online"),
        (window["offline_s"], report.offline_seconds, "offline"),
    ):
        if clock_total > 0:
            drift = abs(span_total - clock_total) / clock_total
        else:
            drift = abs(span_total)
        ok = drift <= 0.01
        agrees = agrees and ok
        print(
            f"{label}: spans {span_total:.3f}s vs clock {clock_total:.3f}s "
            f"({'agree' if ok else f'DISAGREE, drift {drift:.1%}'})"
        )

    if args.jsonl is not None:
        path = write_trace_jsonl(root, args.jsonl)
        print(f"trace written to {path}")
    return 0 if agrees else 1


def _cmd_bench_propagate(args: argparse.Namespace) -> int:
    from .bench.propagate_bench import main as bench_main

    forwarded: list[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.rows is not None:
        forwarded += ["--rows", str(args.rows)]
    if args.chunks is not None:
        forwarded += ["--chunks", str(args.chunks)]
    if args.backend is not None:
        forwarded += ["--backend", args.backend]
    if args.repeats is not None:
        forwarded += ["--repeats", str(args.repeats)]
    if args.output is not None:
        forwarded += ["--output", args.output]
    if args.trace_threshold is not None:
        forwarded += ["--trace-threshold", str(args.trace_threshold)]
    return bench_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Summary-delta warehouse maintenance (SIGMOD 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure9 = sub.add_parser("figure9", help="run one Figure 9 panel")
    figure9.add_argument("panel", choices=["a", "b", "c", "d"])
    figure9.add_argument("--scale", type=float, default=None,
                         help="workload scale factor (default: paper scale)")
    figure9.set_defaults(func=_cmd_figure9)

    lattice = sub.add_parser("lattice", help="print the Figure 8 plan")
    lattice.add_argument("--pos-rows", type=int, default=10_000)
    lattice.set_defaults(func=_cmd_lattice)

    maintain = sub.add_parser("maintain", help="one nightly maintenance run")
    maintain.add_argument("--pos-rows", type=int, default=50_000)
    maintain.add_argument("--changes", type=int, default=5_000)
    maintain.add_argument("--workload", choices=["update", "insert"],
                          default="update")
    maintain.set_defaults(func=_cmd_maintain)

    select = sub.add_parser("select", help="HRU greedy view selection")
    select.add_argument("--pos-rows", type=int, default=10_000)
    select.add_argument("--budget", type=int, default=5)
    select.set_defaults(func=_cmd_select)

    bench = sub.add_parser(
        "bench-propagate",
        help="micro-benchmark the parallel propagate engine",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smoke-test scale (20k rows, 1 repeat)")
    bench.add_argument("--rows", type=int, default=None)
    bench.add_argument("--chunks", type=int, default=None)
    bench.add_argument("--backend", choices=["serial", "thread", "process"],
                       default=None)
    bench.add_argument("--repeats", type=int, default=None)
    bench.add_argument("--output", default=None,
                       help="JSON path (default: BENCH_propagate.json)")
    bench.add_argument("--trace-threshold", type=float, default=None,
                       metavar="PCT",
                       help="fail if tracing overhead exceeds PCT percent")
    bench.set_defaults(func=_cmd_bench_propagate)

    trace = sub.add_parser(
        "trace",
        help="trace one nightly maintenance run and print the span tree",
    )
    trace.add_argument("--pos-rows", type=int, default=50_000)
    trace.add_argument("--changes", type=int, default=5_000)
    trace.add_argument("--workload", choices=["update", "insert"],
                       default="update")
    trace.add_argument("--parallel", action="store_true",
                       help="chunked-parallel propagate + level-parallel walk")
    trace.add_argument("--max-depth", type=int, default=None,
                       help="limit the printed span-tree depth")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also export the trace as JSON lines")
    trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
