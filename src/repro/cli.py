"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figure9 {a,b,c,d}``
    Run one panel of the paper's Figure 9 and print the series table plus
    the shape-claim verdicts.  ``--scale`` shrinks the workload.
``lattice``
    Build the retail warehouse and print the Figure 8 maintenance plan and
    the Figure 5 combined-lattice summary.
``maintain``
    One nightly maintenance run over a synthetic warehouse, with the
    batch-window report and a rematerialisation comparison.
``select``
    HRU greedy view selection over the combined lattice.
``bench-propagate``
    Micro-benchmark of the parallel propagate engine (serial vs compiled
    vs chunked-parallel aggregation, plus level-parallel lattice walks);
    merges results into ``BENCH_propagate.json``.
``bench-serve``
    Query throughput with maintenance running vs quiesced: reader threads
    hammer the query server while a background loop runs full versioned
    maintenance cycles; merges the ``serving`` section into
    ``BENCH_propagate.json``.
``trace``
    Run one nightly maintenance over the Figure 9 retail workload under
    the observability layer and print the span tree, the metrics snapshot,
    and the span-derived batch-window split, cross-checked against the
    legacy :class:`~repro.warehouse.batch.BatchWindowClock` report.
    ``--jsonl PATH`` additionally exports the trace as JSON lines.
``explain``
    Render the maintenance plan *before* running it: propagation levels,
    each node's derivation source and joins, predicted delta rows and
    tuple accesses from the cost model (:mod:`repro.lattice.cost`), and
    the §2.2 with-lattice vs without-lattice comparison.
    ``--partition`` date-partitions the fact table first and adds a
    shards column plus per-shard predicted accesses (and the predicted
    shard-parallel speedup at the effective worker count).  With
    ``--execute`` the plan then runs under tracing and the table is
    re-printed with measured accesses and error percentages;
    ``--bench-json`` merges that comparison into ``BENCH_propagate.json``.
``history``
    List the runs recorded in the persistent run ledger
    (:mod:`repro.obs.ledger`; enabled via ``REPRO_LEDGER=PATH``).
``regress``
    Compare the newest ledger run against a baseline window
    (median-of-ratios over per-phase times, plus the deterministic
    tuple-access total).  Exit 1 on a regression, 2 on a schema or usage
    error, 0 otherwise.
``metrics``
    Run one traced maintenance and print the metrics registry, either as
    JSON or in the Prometheus text exposition format (``--format prom``).
``status``
    Fleet-wide freshness/certificate table after one nightly maintenance
    run: per view, the maintained certificate and its verdict against the
    stored rows, last-refresh run id and kind, staleness seconds, and
    pending change counts.  ``--prom`` additionally prints the freshness
    and integrity gauges in the Prometheus text format.  Exit 1 on any
    certificate drift.
``lineage``
    Change-set lineage explorer over a retail warehouse that ran several
    nightly rounds and holds one still-pending batch: the default report
    prints per-view visibility-lag percentiles over every recorded epoch
    manifest; ``--batch N`` answers "which view epochs include batch N"
    (exit 1 for an unknown id); ``--view NAME`` lists one view's
    manifests and its pending backlog.
``audit``
    Corruption-detecting integrity audit after one nightly maintenance
    run.  Full mode (default) compares maintained, stored, and
    recompute certificates per view; ``--sample K`` re-derives K random
    summary tuples per view from base facts instead.  ``--inject KIND``
    first injects one corruption (``mutate``, ``drop``, ``phantom``,
    ``missed-delta``) for fault-injection smoke tests.  ``--report PATH``
    writes the audit report as JSON.  Exit 1 on any FAIL verdict.
``serve-metrics``
    Run a live demo serving deployment: a retail warehouse under
    continuous query load and versioned maintenance, with the embedded
    metrics exporter (``/metrics``, ``/status``, ``/slow``) bound to
    ``--port`` for ``--duration`` seconds.  Point ``repro top`` or a
    Prometheus scraper at it.
``top``
    Poll a running exporter's ``/status`` endpoint (``--url``) and render
    a live per-view QPS / latency / staleness / cache table, one frame
    per ``--interval`` seconds (``--frames 0`` = until interrupted).
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def _cmd_figure9(args: argparse.Namespace) -> int:
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    from .bench import (
        check_lattice_helps_propagate,
        check_maintenance_beats_rematerialization,
        format_claims,
        format_panel,
        run_panel,
    )

    panel = run_panel(args.panel)
    print(format_panel(panel))
    print()
    claims = [
        check_maintenance_beats_rematerialization(panel),
        check_lattice_helps_propagate(panel),
    ]
    print(format_claims(claims))
    return 0 if all(claim.holds for claim in claims) else 1


def _cmd_lattice(args: argparse.Namespace) -> int:
    from .lattice import build_lattice_for_views, combined_lattice
    from .workload import RetailConfig, build_retail_warehouse, generate_retail

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    lattice = build_lattice_for_views(warehouse.views_over("pos"))
    print("Maintenance plan (paper, Figure 8):")
    print(lattice.describe())

    combined = combined_lattice([
        data.stores.hierarchy.levels,
        data.items.hierarchy.levels,
        ("date",),
    ])
    print(
        f"\nCombined cube lattice (paper, Figure 5): {len(combined.nodes)} "
        f"candidate views, {len(combined.edges)} derivation edges."
    )
    return 0


def _cmd_maintain(args: argparse.Namespace) -> int:
    from .core.propagate import PropagateOptions
    from .lattice import maintain_lattice, rematerialize_with_lattice
    from .warehouse.partition import partition_enabled, partition_fact
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        insertion_generating_changes,
        update_generating_changes,
    )

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    views = warehouse.views_over("pos")
    if args.workload == "insert":
        changes = insertion_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )
    else:
        changes = update_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )

    options = PropagateOptions()
    partitioned = None
    if args.partition or partition_enabled():
        partitioned = partition_fact(data.pos, width=args.shard_width)
        options = PropagateOptions(
            partition=True, shard_workers=args.shard_workers
        )

    result = maintain_lattice(views, changes, options=options)
    if partitioned is not None and partitioned.last_run is not None:
        info = partitioned.last_run
        mode = "process pool" if info.pool else "inline"
        print(f"Shard-parallel propagate: {info.shard_count} date shard(s) "
              f"on {info.workers} worker(s) ({mode}).")
    print(f"Maintained {len(views)} summary tables over "
          f"{changes.size():,} changes:")
    for name, stats in result.stats.items():
        print(f"  {name:<12} {stats.updated:>6} updated  {stats.inserted:>5} "
              f"inserted  {stats.deleted:>5} deleted  "
              f"{stats.recomputed:>5} recomputed")
    print(f"\n{result.report.summary()}")

    started = time.perf_counter()
    rematerialize_with_lattice(views)
    print(f"(rematerialising instead would have taken "
          f"{time.perf_counter() - started:.3f}s of batch window)")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from .lattice import (
        combined_lattice,
        exact_node_sizes,
        greedy_select,
        grouping_label,
    )
    from .workload import RetailConfig, generate_retail

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    lattice = combined_lattice([
        data.stores.hierarchy.levels,
        data.items.hierarchy.levels,
        ("date",),
    ])
    source = data.pos.join_dimensions(data.pos.table, ["stores", "items"])
    sizes = exact_node_sizes(lattice, source)
    selection = greedy_select(lattice, sizes, view_budget=args.budget)
    order = ["storeID", "city", "region", "itemID", "category", "date"]
    print(f"HRU greedy selection (budget {args.budget} beyond the top view):")
    for step in selection.steps:
        print(f"  {grouping_label(step.node, order):<32} "
              f"size {sizes[step.node]:>8,}  benefit {step.benefit:>12,.0f}")
    print(f"total query cost: {selection.total_cost:,.0f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.propagate import PropagateOptions
    from .obs import (
        format_span_tree,
        registry,
        trace,
        trace_summary,
        write_trace_jsonl,
    )
    from .obs.tracing import trace_kill_switch
    from .warehouse.nightly import run_nightly_maintenance
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        insertion_generating_changes,
        update_generating_changes,
    )

    if trace_kill_switch():
        print(
            "tracing is disabled by REPRO_TRACE=0; "
            "unset it (or set REPRO_TRACE=1) to record spans"
        )
        return 1

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    if args.workload == "insert":
        staged = insertion_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )
    else:
        staged = update_generating_changes(
            data.pos, data.config, args.changes, data.rng
        )
    pending = warehouse.pending_changes("pos")
    for row in staged.insertions.scan():
        pending.insert(row)
    for row in staged.deletions.scan():
        pending.delete(row)

    options = PropagateOptions(
        parallel=args.parallel, level_parallel=args.parallel
    )
    registry().reset()
    with trace() as recorder:
        result = run_nightly_maintenance(warehouse, options=options)
    root = recorder.finish()

    print(format_span_tree(root, max_depth=args.max_depth))
    summary = trace_summary(root, registry())
    window = summary["window"]
    print(
        f"\nbatch window from span tags: "
        f"online {window['online_s']:.3f}s, offline {window['offline_s']:.3f}s"
        f" ({summary['spans']} spans recorded)"
    )
    if "metrics" in summary:
        print("metrics:")
        for name, value in sorted(summary["metrics"]["counters"].items()):
            print(f"  {name:<32} {value:>12,}")
        for name, stats in sorted(summary["metrics"]["histograms"].items()):
            print(
                f"  {name:<32} count={stats['count']:,} "
                f"mean={stats['mean']:.6g} max={stats['max']:.6g}"
            )

    report = result.report
    agrees = True
    for span_total, clock_total, label in (
        (window["online_s"], report.online_seconds, "online"),
        (window["offline_s"], report.offline_seconds, "offline"),
    ):
        if clock_total > 0:
            drift = abs(span_total - clock_total) / clock_total
        else:
            drift = abs(span_total)
        ok = drift <= 0.01
        agrees = agrees and ok
        print(
            f"{label}: spans {span_total:.3f}s vs clock {clock_total:.3f}s "
            f"({'agree' if ok else f'DISAGREE, drift {drift:.1%}'})"
        )

    if args.jsonl is not None:
        path = write_trace_jsonl(root, args.jsonl)
        print(f"trace written to {path}")
    return 0 if agrees else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from .bench.serve_bench import main as bench_main

    forwarded: list[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.pos_rows is not None:
        forwarded += ["--pos-rows", str(args.pos_rows)]
    if args.changes is not None:
        forwarded += ["--changes", str(args.changes)]
    if args.threads is not None:
        forwarded += ["--threads", str(args.threads)]
    if args.queries_per_thread is not None:
        forwarded += ["--queries-per-thread", str(args.queries_per_thread)]
    if args.output is not None:
        forwarded += ["--output", args.output]
    if args.expose_http is not None:
        forwarded += ["--expose-http", str(args.expose_http)]
    if args.hold_exporter is not None:
        forwarded += ["--hold-exporter", str(args.hold_exporter)]
    return bench_main(forwarded)


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    import threading

    from .bench.serve_bench import serving_queries
    from .lattice import maintain_lattice
    from .serve import QueryServer
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        update_generating_changes,
    )

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    views = warehouse.views_over("pos")
    queries = serving_queries(data.pos)
    stop = threading.Event()
    failures: list[BaseException] = []

    def loader(seed: int) -> None:
        i = 0
        try:
            while not stop.is_set():
                server.answer(queries[(seed + i) % len(queries)])
                i += 1
                time.sleep(args.query_interval)
        except BaseException as failure:
            failures.append(failure)

    def maintainer() -> None:
        try:
            while not stop.is_set():
                changes = update_generating_changes(
                    data.pos, data.config, args.changes, data.rng
                )
                maintain_lattice(views, changes, mode="versioned")
                stop.wait(args.maintenance_interval)
        except BaseException as failure:
            failures.append(failure)

    with QueryServer(
        warehouse,
        max_workers=args.threads,
        staleness_slo_s=args.slo,
        expose_http=args.port,
    ) as server:
        print(f"serving metrics at {server.exporter.url}/metrics")
        print(f"status JSON at     {server.exporter.url}/status")
        print(f"slow queries at    {server.exporter.url}/slow")
        print(f"(running {args.duration:.0f}s of query load + versioned "
              f"maintenance; try: repro top --url {server.exporter.url})")
        workers = [
            threading.Thread(target=loader, args=(seed,), daemon=True)
            for seed in range(args.threads)
        ]
        workers.append(threading.Thread(target=maintainer, daemon=True))
        for worker in workers:
            worker.start()
        try:
            time.sleep(args.duration)
        except KeyboardInterrupt:
            pass
        stop.set()
        for worker in workers:
            worker.join()
        snapshot = server.stats.snapshot()
    if failures:
        raise failures[0]
    print(f"served {snapshot['queries']:,} queries "
          f"({snapshot['cache_hits']:,} cache hits); "
          f"{max(view.epoch for view in views)} epochs published")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    from .obs.serving import format_top

    url = args.url.rstrip("/") + "/status"
    previous = None
    frame = 0
    while args.frames <= 0 or frame < args.frames:
        if frame:
            time.sleep(args.interval)
        try:
            with urlopen(url, timeout=5.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (URLError, OSError, ValueError) as exc:
            print(f"cannot scrape {url}: {exc}", file=sys.stderr)
            return 2
        if frame:
            print()
        print(format_top(payload, previous))
        previous = payload
        frame += 1
    return 0


def _cmd_bench_propagate(args: argparse.Namespace) -> int:
    from .bench.propagate_bench import main as bench_main

    forwarded: list[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.rows is not None:
        forwarded += ["--rows", str(args.rows)]
    if args.chunks is not None:
        forwarded += ["--chunks", str(args.chunks)]
    if args.backend is not None:
        forwarded += ["--backend", args.backend]
    if args.repeats is not None:
        forwarded += ["--repeats", str(args.repeats)]
    if args.output is not None:
        forwarded += ["--output", args.output]
    if args.trace_threshold is not None:
        forwarded += ["--trace-threshold", str(args.trace_threshold)]
    return bench_main(forwarded)


def _retail_run_inputs(pos_rows: int, change_rows: int, workload: str):
    """(views, changes) for one synthetic retail maintenance run."""
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        insertion_generating_changes,
        update_generating_changes,
    )

    data = generate_retail(RetailConfig(pos_rows=pos_rows))
    warehouse = build_retail_warehouse(data)
    factory = (
        insertion_generating_changes if workload == "insert"
        else update_generating_changes
    )
    changes = factory(data.pos, data.config, change_rows, data.rng)
    return warehouse.views_over("pos"), changes


def _cmd_explain(args: argparse.Namespace) -> int:
    from .core.propagate import PropagateOptions
    from .lattice import (
        actual_node_accesses,
        actual_refresh_accesses,
        actual_shard_accesses,
        build_lattice_for_views,
        collect_statistics,
        compare_plan,
        effective_level_workers,
        estimate_partitioned_plan,
        estimate_plan_cost,
        maintain_lattice,
    )
    from .obs import trace
    from .obs.tracing import trace_kill_switch

    views, changes = _retail_run_inputs(
        args.pos_rows, args.changes, args.workload
    )
    lattice = build_lattice_for_views(views)
    stats = collect_statistics(lattice, changes, views=views)
    options = PropagateOptions(
        parallel=args.parallel, level_parallel=args.parallel,
        partition=True if args.partition else None,
        shard_workers=args.shard_workers,
    )
    estimate = estimate_plan_cost(
        lattice, stats, shared_scan=options.shared_scan_active()
    )
    workers, fallback = effective_level_workers(options, estimate.levels)

    part_estimate = None
    if args.partition:
        from .warehouse.partition import (
            effective_shard_workers,
            partition_fact,
        )

        partitioned = partition_fact(
            views[0].definition.fact, width=args.shard_width
        )
        routed = partitioned.route_changes(changes)
        part_estimate = estimate_partitioned_plan(
            lattice, stats,
            [
                (s.key, (len(s.insertions), len(s.deletions)))
                for s in routed
            ],
            shared_scan=estimate.shared_scan,
        )
        shard_workers, _ = effective_shard_workers(options, len(routed))

    print(
        f"Maintenance plan: {len(views)} summary tables over "
        f"{len(views[0].definition.fact.table):,} pos rows, "
        f"{changes.size():,} pending changes ({args.workload} workload)\n"
    )
    header = (
        f"{'node':<12} {'lvl':>3}  {'source':<12} {'joins':<16} "
        f"{'scan':<6} {'est.delta':>10} {'est.accesses':>13}"
    )
    if part_estimate is not None:
        header += f" {'shards':>6} {'est.sharded':>13}"
    print(header)
    print("-" * len(header))
    for name in estimate.order:
        node = estimate.nodes[name]
        if node.source == "changes":
            scan = "-"
        elif not node.shared_scan:
            # Derived but unfused: per-child edge replay, either because
            # shared scan is off or cost-based fusion declined the group.
            scan = "child"
        elif node.scan_owner:
            scan = "owner"
        else:
            scan = "fused"
        line = (
            f"{node.name:<12} {node.level:>3}  {node.source:<12} "
            f"{','.join(node.joins) or '-':<16} {scan:<6} "
            f"{node.delta_rows:>10,.0f} {node.propagate_accesses:>13,.0f}"
        )
        if part_estimate is not None:
            line += (
                f" {part_estimate.shard_count:>6} "
                f"{part_estimate.node_accesses(name):>13,.0f}"
            )
        print(line)
    print(
        f"\npropagate with lattice:    "
        f"{estimate.with_lattice_accesses:>13,.0f} accesses"
        f"\npropagate without lattice: "
        f"{estimate.without_lattice_accesses:>13,.0f} accesses"
        f"  (lattice saves {estimate.lattice_savings_ratio:.2f}x — §2.2)"
        f"\nrefresh (lower bound):     "
        f"{estimate.refresh_accesses:>13,.0f} accesses"
    )
    if estimate.shared_scan:
        print(
            f"shared-scan engine:        "
            f"{estimate.shared_scan_saved_accesses:>13,.0f} accesses saved "
            f"vs per-child pipelines ({estimate.per_child_accesses:,.0f})"
        )
    if part_estimate is not None:
        print(
            f"\npartitioned plan: {part_estimate.shard_count} date shards "
            f"(width {args.shard_width}), {shard_workers} shard worker(s)"
        )
        shard_header = (
            f"{'shard':>8} {'ins':>7} {'del':>7} {'est.accesses':>13}"
        )
        print(shard_header)
        print("-" * len(shard_header))
        for shard in part_estimate.shards:
            print(
                f"{str(shard.key):>8} {shard.side_rows[0]:>7,} "
                f"{shard.side_rows[1]:>7,} "
                f"{shard.propagate_accesses:>13,.0f}"
            )
        print(
            f"sharded total: {part_estimate.propagate_accesses:,.0f} accesses"
            f" over {part_estimate.change_rows:,} routed change rows; "
            f"predicted propagate speedup at {shard_workers} worker(s): "
            f"{part_estimate.predicted_speedup(shard_workers):.2f}x "
            f"(critical path {part_estimate.makespan(shard_workers):,.0f})"
        )
    if not options.level_parallel:
        schedule = "serial topological walk"
    elif fallback:
        schedule = (
            "serial topological walk (level-parallel requested, but only "
            "one effective worker — automatic fallback)"
        )
    else:
        schedule = f"level-parallel, {workers} workers"
    print(f"schedule: {schedule}")
    from .relational.table import columnar_killed

    if columnar_killed():
        storage = "row (REPRO_COLUMNAR=0 kill-switch)"
    else:
        storage = ("columnar (shipped default; REPRO_COLUMNAR=0 reverts "
                   "to row storage)")
    print(
        f"storage: {storage} — access predictions are storage-independent"
    )

    if not args.execute:
        return 0
    if trace_kill_switch():
        print(
            "\ncannot execute under REPRO_TRACE=0: predicted-vs-actual "
            "needs recorded spans",
            file=sys.stderr,
        )
        return 2

    with trace() as recorder:
        maintain_lattice(views, changes, options=options, lattice=lattice)
    root = recorder.finish()
    rows = compare_plan(estimate, actual_node_accesses(root))
    refresh_actuals = actual_refresh_accesses(root)

    if part_estimate is not None:
        print(
            "\nnote: under the shard-parallel path the node spans record "
            "only the\nper-view merge step — per-shard propagate work is "
            "compared in the shard\ntable below."
        )
    print("\npredicted vs actual (propagate tuple accesses):")
    header = (
        f"{'node':<12} {'predicted':>12} {'actual':>12} "
        f"{'error':>8} {'ratio':>6}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        error = f"{row.error_pct:+.1f}%" if row.error_pct is not None else "-"
        ratio = f"{row.ratio:.2f}" if row.ratio is not None else "-"
        print(
            f"{row.name:<12} {row.predicted:>12,.0f} {row.actual:>12,.0f} "
            f"{error:>8} {ratio:>6}"
        )
    measured_refresh = sum(refresh_actuals.values())
    print(
        f"refresh: predicted lower bound "
        f"{estimate.refresh_accesses:,.0f}, measured "
        f"{measured_refresh:,.0f} accesses (gap = MIN/MAX recompute scans)"
    )
    if part_estimate is not None:
        shard_actuals = actual_shard_accesses(root)
        info = partitioned.last_run
        print(
            f"\nper-shard predicted vs actual "
            f"({'process pool' if info and info.pool else 'inline'}, "
            f"{info.workers if info else shard_workers} worker(s)):"
        )
        by_key = {str(s.key): s for s in part_estimate.shards}
        run_stats = {str(s.key): s for s in info.shards} if info else {}
        for key in sorted(by_key, key=lambda k: by_key[k].key):
            predicted = by_key[key].propagate_accesses
            measured = run_stats[key].access_units if key in run_stats \
                else shard_actuals.get(key, 0)
            ratio = f"{predicted / measured:.2f}" if measured else "-"
            print(
                f"  shard {key:>6}: predicted {predicted:>10,.0f}  "
                f"actual {measured:>10,}  ratio {ratio}"
            )

    if args.bench_json is not None:
        from .bench.reporting import write_bench_json

        payload = {
            "workload": args.workload,
            "pos_rows": args.pos_rows,
            "change_rows": args.changes,
            "nodes": {
                row.name: {
                    "predicted": row.predicted,
                    "actual": row.actual,
                    "error_pct": row.error_pct,
                }
                for row in rows
            },
            "predicted_with_lattice": estimate.with_lattice_accesses,
            "predicted_without_lattice": estimate.without_lattice_accesses,
        }
        target = write_bench_json(
            "predicted_vs_actual", payload,
            path=args.bench_json or None,
        )
        print(f"predicted_vs_actual merged into {target}")
    return 0


def _retail_warehouse_after_nightly(pos_rows: int, change_rows: int,
                                    workload: str):
    """A retail warehouse that has been through one nightly maintenance
    run over *change_rows* staged changes (returns warehouse + the data
    bundle, whose ``rng`` continues the deterministic stream)."""
    from .warehouse.nightly import run_nightly_maintenance
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        insertion_generating_changes,
        update_generating_changes,
    )

    data = generate_retail(RetailConfig(pos_rows=pos_rows))
    warehouse = build_retail_warehouse(data)
    factory = (
        insertion_generating_changes if workload == "insert"
        else update_generating_changes
    )
    staged = factory(data.pos, data.config, change_rows, data.rng)
    warehouse.stage_changes("pos", staged)
    run_nightly_maintenance(warehouse)
    return warehouse, data


def _cmd_status(args: argparse.Namespace) -> int:
    from .obs import prometheus_text, registry
    from .warehouse.health import (
        export_status_gauges,
        format_status,
        warehouse_status,
    )
    from .workload import update_generating_changes

    warehouse, data = _retail_warehouse_after_nightly(
        args.pos_rows, args.changes, args.workload
    )
    # Stage (but do not maintain) a second batch so the table shows what
    # pending-change pressure looks like between nightly runs.
    staged = update_generating_changes(
        data.pos, data.config, max(1, args.changes // 2), data.rng
    )
    warehouse.stage_changes("pos", staged)

    statuses = warehouse_status(warehouse)
    print(format_status(statuses))
    if args.prom:
        export_status_gauges(warehouse, registry())
        print()
        sys.stdout.write(prometheus_text(registry()))
    drifted = [s.name for s in statuses if s.certificate_ok is False]
    if drifted:
        print(f"certificate drift detected: {drifted}", file=sys.stderr)
        return 1
    return 0


def _nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    import math

    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


def _cmd_lineage(args: argparse.Namespace) -> int:
    from .warehouse.nightly import run_nightly_maintenance
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        update_generating_changes,
    )

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    # update_generating_changes needs an even size (delete+reinsert pairs).
    per_round = max(2, (args.changes // max(1, args.rounds)) // 2 * 2)
    for _ in range(args.rounds):
        staged = update_generating_changes(
            data.pos, data.config, per_round, data.rng
        )
        warehouse.stage_changes("pos", staged)
        run_nightly_maintenance(warehouse)
    # Leave one batch staged but unmaintained, so the pending side of the
    # report (and --batch on a not-yet-visible id) is exercised.
    warehouse.stage_changes(
        "pos",
        update_generating_changes(
            data.pos, data.config, max(2, (per_round // 2) // 2 * 2), data.rng
        ),
    )
    pending = warehouse.pending_changes("pos")

    if args.batch is not None:
        return _lineage_batch_report(warehouse, pending, args.batch)
    if args.view is not None:
        return _lineage_view_report(warehouse, pending, args.view)
    return _lineage_summary(warehouse, pending)


def _lineage_batch_report(warehouse, pending, batch_id: int) -> int:
    """Which epochs include *batch_id* — one line per view."""
    print(f"batch {batch_id}:")
    found = False
    for name in sorted(warehouse.views):
        manifest = warehouse.views[name].lineage.manifest_for(batch_id)
        if manifest is None:
            continue
        found = True
        lag = manifest.lags()[batch_id]
        print(
            f"  {name:<14} epoch {manifest.epoch:>3}  "
            f"refresh {manifest.refresh_count:>3}  "
            f"mode {manifest.mode:<9}  lag {lag:.6f}s"
        )
    if batch_id in pending.lineage:
        found = True
        print(
            f"  (staged, not yet visible in any view — "
            f"age {pending.lineage.oldest_age_s():.6f}s ceiling)"
        )
    if not found:
        print("  unknown batch id (never staged here)")
        return 1
    return 0


def _lineage_view_report(warehouse, pending, view_name: str) -> int:
    """Every epoch manifest of one view, plus its pending backlog."""
    view = warehouse.views.get(view_name)
    if view is None:
        print(f"no view named {view_name!r}", file=sys.stderr)
        return 2
    print(f"view {view_name}: {len(view.lineage)} manifests")
    for manifest in view.lineage.manifests():
        intervals = ",".join(
            f"{lo}-{hi}" if lo != hi else f"{lo}"
            for lo, hi in manifest.intervals()
        )
        print(
            f"  epoch {manifest.epoch:>3}  mode {manifest.mode:<9} "
            f"batches [{intervals}]  max_lag {manifest.max_lag_s:.6f}s"
        )
    backlog = view.lineage.pending_against(pending.lineage)
    if backlog:
        intervals = ",".join(
            f"{lo}-{hi}" if lo != hi else f"{lo}"
            for lo, hi in backlog.intervals()
        )
        print(
            f"  pending: {len(backlog)} batches [{intervals}] "
            f"oldest {backlog.oldest_age_s():.6f}s"
        )
    else:
        print("  pending: none")
    return 0


def _lineage_summary(warehouse, pending) -> int:
    """Per-view visibility-lag percentiles over all recorded manifests."""
    header = (
        f"{'view':<14} {'manifests':>9} {'batches':>8} {'pending':>8} "
        f"{'lag_p50':>9} {'lag_p95':>9} {'lag_p99':>9} {'lag_max':>9}"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(warehouse.views):
        view = warehouse.views[name]
        lags = sorted(
            lag
            for manifest in view.lineage.manifests()
            for lag in manifest.lags().values()
        )
        backlog = view.lineage.pending_against(pending.lineage)
        print(
            f"{name:<14} {len(view.lineage):>9} "
            f"{view.lineage.batches_published():>8} {len(backlog):>8} "
            f"{_nearest_rank(lags, 0.50):>9.6f} "
            f"{_nearest_rank(lags, 0.95):>9.6f} "
            f"{_nearest_rank(lags, 0.99):>9.6f} "
            f"{(lags[-1] if lags else 0.0):>9.6f}"
        )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import json
    import random

    from .warehouse.health import audit_warehouse, inject_corruption

    warehouse, _data = _retail_warehouse_after_nightly(
        args.pos_rows, args.changes, args.workload
    )
    rng = random.Random(args.seed)
    if args.inject:
        description = inject_corruption(
            warehouse, args.inject, rng=rng, view_name=args.view
        )
        print(f"injected: {description}\n")
    report = audit_warehouse(warehouse, sample=args.sample, rng=rng)
    print(report.format())
    if args.report is not None:
        from .bench.reporting import atomic_write_text

        atomic_write_text(
            args.report,
            json.dumps(report.to_record(), indent=2, sort_keys=True) + "\n",
        )
        print(f"audit report written to {args.report}")
    return 0 if report.passed else 1


def _ledger_from_args(args: argparse.Namespace):
    from .obs.ledger import LEDGER_ENV_VAR, RunLedger

    path = args.ledger or os.environ.get(LEDGER_ENV_VAR, "").strip()
    if not path:
        print(
            f"no ledger: pass --ledger PATH or set {LEDGER_ENV_VAR}",
            file=sys.stderr,
        )
        return None
    return RunLedger(path)


def _cmd_history(args: argparse.Namespace) -> int:
    ledger = _ledger_from_args(args)
    if ledger is None:
        return 2
    try:
        records = ledger.records()
    except (OSError, ValueError) as exc:
        print(f"cannot read ledger: {exc}", file=sys.stderr)
        return 2
    if args.kind:
        records = [r for r in records if r.get("kind") == args.kind]
    if not records:
        print("no recorded runs")
        return 0
    header = (
        f"{'run':>4}  {'when':<19} {'kind':<16} {'online':>8} "
        f"{'offline':>8} {'accesses':>10} {'views':>5} {'changes':>8} "
        f"{'batches':>7} {'lag_s':>8}"
    )
    print(header)
    print("-" * len(header))
    for record in records[-args.limit:]:
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.get("ts", 0))
        )
        access = record.get("access") or {}
        changes = record.get("changes") or {}
        n_changes = sum(changes.values())
        # End-to-end visibility: batches the run published and the worst
        # ingest->publish lag over all its manifests (older ledgers have
        # no lineage section -> "-").
        lineage = record.get("lineage")
        if lineage:
            batches = max(
                (m.get("batches", 0) for m in lineage.values()), default=0
            )
            lag = f"{max(m.get('max_lag_s', 0.0) for m in lineage.values()):.3f}"
        else:
            batches, lag = 0, "-"
        print(
            f"{record.get('run_id', '?'):>4}  {when:<19} "
            f"{record.get('kind', '?'):<16} "
            f"{record.get('online_s', 0.0):>8.3f} "
            f"{record.get('offline_s', 0.0):>8.3f} "
            f"{access.get('total', 0):>10,} "
            f"{len(record.get('views') or {}):>5} {n_changes:>8,} "
            f"{batches:>7,} {lag:>8}"
        )
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from .obs.ledger import detect_regression

    ledger = _ledger_from_args(args)
    if ledger is None:
        return 2
    try:
        records = ledger.records()
    except (OSError, ValueError) as exc:
        print(f"cannot read ledger: {exc}", file=sys.stderr)
        return 2
    kind = args.kind
    if kind is None and records:
        # By default judge the newest run against runs of its own kind.
        kind = records[-1].get("kind")
    try:
        report = detect_regression(
            records,
            window=args.window,
            time_threshold=args.time_threshold,
            access_threshold=args.access_threshold,
            kind=kind,
        )
    except ValueError as exc:
        print(f"cannot judge: {exc}")
        return 0
    print(
        f"run {report.run_id} vs baseline runs "
        f"{list(report.baseline_ids)} (kind={kind}):"
    )
    for finding in report.findings:
        verdict = "REGRESSED" if finding.regressed else "ok"
        print(f"  [{verdict}] {finding.metric}: ratio {finding.ratio:.3f}")
    if report.regressed:
        print("verdict: REGRESSION")
        return 1
    print("verdict: no regression")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .obs import prometheus_text, registry, trace
    from .obs.tracing import trace_kill_switch
    from .warehouse.nightly import run_nightly_maintenance
    from .workload import (
        RetailConfig,
        build_retail_warehouse,
        generate_retail,
        update_generating_changes,
    )

    if trace_kill_switch():
        print(
            "tracing is disabled by REPRO_TRACE=0; the metrics registry "
            "only fills while tracing is enabled",
            file=sys.stderr,
        )
        return 2

    data = generate_retail(RetailConfig(pos_rows=args.pos_rows))
    warehouse = build_retail_warehouse(data)
    staged = update_generating_changes(
        data.pos, data.config, args.changes, data.rng
    )
    pending = warehouse.pending_changes("pos")
    for row in staged.insertions.scan():
        pending.insert(row)
    for row in staged.deletions.scan():
        pending.delete(row)

    registry().reset()
    with trace():
        run_nightly_maintenance(warehouse)

    if args.format == "prom":
        sys.stdout.write(prometheus_text(registry()))
    else:
        print(json.dumps(registry().snapshot(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Summary-delta warehouse maintenance (SIGMOD 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure9 = sub.add_parser("figure9", help="run one Figure 9 panel")
    figure9.add_argument("panel", choices=["a", "b", "c", "d"])
    figure9.add_argument("--scale", type=float, default=None,
                         help="workload scale factor (default: paper scale)")
    figure9.set_defaults(func=_cmd_figure9)

    lattice = sub.add_parser("lattice", help="print the Figure 8 plan")
    lattice.add_argument("--pos-rows", type=int, default=10_000)
    lattice.set_defaults(func=_cmd_lattice)

    maintain = sub.add_parser("maintain", help="one nightly maintenance run")
    maintain.add_argument("--pos-rows", type=int, default=50_000)
    maintain.add_argument("--changes", type=int, default=5_000)
    maintain.add_argument("--workload", choices=["update", "insert"],
                          default="update")
    maintain.add_argument("--partition", action="store_true",
                          help="date-partition the fact table and run the "
                               "shard-parallel propagate path (also taken "
                               "when REPRO_PARTITION=1)")
    maintain.add_argument("--shard-width", type=int, default=1,
                          help="dates per shard for --partition (default 1)")
    maintain.add_argument("--shard-workers", type=int, default=None,
                          help="shard pool size (default: CPU count)")
    maintain.set_defaults(func=_cmd_maintain)

    select = sub.add_parser("select", help="HRU greedy view selection")
    select.add_argument("--pos-rows", type=int, default=10_000)
    select.add_argument("--budget", type=int, default=5)
    select.set_defaults(func=_cmd_select)

    bench = sub.add_parser(
        "bench-propagate",
        help="micro-benchmark the parallel propagate engine",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smoke-test scale (20k rows, 1 repeat)")
    bench.add_argument("--rows", type=int, default=None)
    bench.add_argument("--chunks", type=int, default=None)
    bench.add_argument("--backend", choices=["serial", "thread", "process"],
                       default=None)
    bench.add_argument("--repeats", type=int, default=None)
    bench.add_argument("--output", default=None,
                       help="JSON path (default: BENCH_propagate.json)")
    bench.add_argument("--trace-threshold", type=float, default=None,
                       metavar="PCT",
                       help="fail if tracing overhead exceeds PCT percent")
    bench.set_defaults(func=_cmd_bench_propagate)

    serve = sub.add_parser(
        "bench-serve",
        help="benchmark query throughput under concurrent maintenance",
    )
    serve.add_argument("--quick", action="store_true",
                       help="smoke-test scale (5k rows, 2 threads)")
    serve.add_argument("--pos-rows", type=int, default=None)
    serve.add_argument("--changes", type=int, default=None)
    serve.add_argument("--threads", type=int, default=None)
    serve.add_argument("--queries-per-thread", type=int, default=None)
    serve.add_argument("--output", default=None,
                       help="JSON path (default: BENCH_propagate.json)")
    serve.add_argument("--expose-http", type=int, default=None,
                       metavar="PORT",
                       help="serve /metrics from the under-maintenance "
                            "server on PORT (0 = ephemeral)")
    serve.add_argument("--hold-exporter", type=float, default=None,
                       metavar="SECONDS",
                       help="keep the exporter scrapeable this long after "
                            "the measured window")
    serve.set_defaults(func=_cmd_bench_serve)

    trace = sub.add_parser(
        "trace",
        help="trace one nightly maintenance run and print the span tree",
    )
    trace.add_argument("--pos-rows", type=int, default=50_000)
    trace.add_argument("--changes", type=int, default=5_000)
    trace.add_argument("--workload", choices=["update", "insert"],
                       default="update")
    trace.add_argument("--parallel", action="store_true",
                       help="chunked-parallel propagate + level-parallel walk")
    trace.add_argument("--max-depth", type=int, default=None,
                       help="limit the printed span-tree depth")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also export the trace as JSON lines")
    trace.set_defaults(func=_cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="show the maintenance plan with predicted tuple accesses",
    )
    explain.add_argument("--pos-rows", type=int, default=50_000)
    explain.add_argument("--changes", type=int, default=5_000)
    explain.add_argument("--workload", choices=["update", "insert"],
                         default="update")
    explain.add_argument("--parallel", action="store_true",
                         help="plan for the parallel engine (affects only "
                              "the schedule line; costs are identical)")
    explain.add_argument("--partition", action="store_true",
                         help="date-partition the fact table and add the "
                              "shards column with per-shard predicted "
                              "accesses (with --execute, the run takes the "
                              "shard-parallel path)")
    explain.add_argument("--shard-width", type=int, default=1,
                         help="dates per shard for --partition (default 1)")
    explain.add_argument("--shard-workers", type=int, default=None,
                         help="process-pool size for the shard-parallel "
                              "path (default: CPU count)")
    explain.add_argument("--execute", action="store_true",
                         help="run the plan under tracing and print "
                              "predicted-vs-actual accesses")
    explain.add_argument("--bench-json", nargs="?", const="", default=None,
                         metavar="PATH",
                         help="with --execute: merge the comparison into "
                              "the benchmark JSON (default path when no "
                              "PATH given)")
    explain.set_defaults(func=_cmd_explain)

    history = sub.add_parser(
        "history", help="list runs recorded in the run ledger"
    )
    history.add_argument("--ledger", default=None, metavar="PATH",
                         help="ledger file (default: $REPRO_LEDGER)")
    history.add_argument("--limit", type=int, default=20)
    history.add_argument("--kind", default=None,
                         help="only show runs of this kind")
    history.set_defaults(func=_cmd_history)

    regress = sub.add_parser(
        "regress",
        help="compare the newest ledger run against a baseline window",
    )
    regress.add_argument("--ledger", default=None, metavar="PATH",
                         help="ledger file (default: $REPRO_LEDGER)")
    regress.add_argument("--window", type=int, default=5,
                         help="baseline runs to compare against")
    regress.add_argument("--time-threshold", type=float, default=1.5,
                         help="median-of-ratios phase-time ratio that "
                              "counts as a regression")
    regress.add_argument("--access-threshold", type=float, default=1.05,
                         help="tuple-access ratio that counts as a "
                              "regression")
    regress.add_argument("--kind", default=None,
                         help="judge against runs of this kind (default: "
                              "the newest run's kind)")
    regress.set_defaults(func=_cmd_regress)

    metrics = sub.add_parser(
        "metrics",
        help="print the metrics registry after one traced maintenance",
    )
    metrics.add_argument("--pos-rows", type=int, default=5_000)
    metrics.add_argument("--changes", type=int, default=500)
    metrics.add_argument("--format", choices=["json", "prom"],
                         default="json")
    metrics.set_defaults(func=_cmd_metrics)

    status = sub.add_parser(
        "status",
        help="fleet-wide freshness/certificate table after one nightly run",
    )
    status.add_argument("--pos-rows", type=int, default=5_000)
    status.add_argument("--changes", type=int, default=500)
    status.add_argument("--workload", choices=["update", "insert"],
                        default="update")
    status.add_argument("--prom", action="store_true",
                        help="also print freshness/integrity gauges in the "
                             "Prometheus text format")
    status.set_defaults(func=_cmd_status)

    lineage = sub.add_parser(
        "lineage",
        help="change-set lineage explorer: batch->epoch manifests and "
             "visibility-lag percentiles",
    )
    lineage.add_argument("--pos-rows", type=int, default=5_000)
    lineage.add_argument("--changes", type=int, default=500,
                         help="total change rows across all rounds")
    lineage.add_argument("--rounds", type=int, default=3,
                         help="nightly maintenance rounds to run")
    lineage.add_argument("--batch", type=int, default=None, metavar="N",
                         help="show which view epochs include batch N")
    lineage.add_argument("--view", default=None, metavar="NAME",
                         help="show every epoch manifest of one view")
    lineage.set_defaults(func=_cmd_lineage)

    audit = sub.add_parser(
        "audit",
        help="integrity audit of every summary table (exit 1 on any FAIL)",
    )
    audit.add_argument("--pos-rows", type=int, default=5_000)
    audit.add_argument("--changes", type=int, default=500)
    audit.add_argument("--workload", choices=["update", "insert"],
                       default="update")
    audit.add_argument("--sample", type=int, default=None, metavar="K",
                       help="sampled drill-down audit of K tuples per view "
                            "(default: full certificate audit)")
    audit.add_argument("--inject", choices=["mutate", "drop", "phantom",
                                            "missed-delta"],
                       default=None,
                       help="inject one corruption before auditing "
                            "(fault-injection smoke)")
    audit.add_argument("--view", default=None,
                       help="target view for --inject (default: first "
                            "non-empty view)")
    audit.add_argument("--seed", type=int, default=0,
                       help="random seed for sampling and injection")
    audit.add_argument("--report", default=None, metavar="PATH",
                       help="write the audit report as JSON")
    audit.set_defaults(func=_cmd_audit)

    serve_metrics = sub.add_parser(
        "serve-metrics",
        help="run a demo serving deployment with the live metrics exporter",
    )
    serve_metrics.add_argument("--port", type=int, default=9464,
                               help="exporter port (0 = ephemeral)")
    serve_metrics.add_argument("--duration", type=float, default=30.0,
                               help="seconds to keep serving")
    serve_metrics.add_argument("--pos-rows", type=int, default=5_000)
    serve_metrics.add_argument("--changes", type=int, default=500,
                               help="change-batch size per maintenance cycle")
    serve_metrics.add_argument("--threads", type=int, default=2,
                               help="query loader threads")
    serve_metrics.add_argument("--slo", type=float, default=None,
                               metavar="SECONDS",
                               help="staleness SLO (default: "
                                    "$REPRO_STALENESS_SLO_S)")
    serve_metrics.add_argument("--query-interval", type=float, default=0.01,
                               metavar="SECONDS",
                               help="pause between queries per loader thread")
    serve_metrics.add_argument("--maintenance-interval", type=float,
                               default=2.0, metavar="SECONDS",
                               help="pause between versioned maintenance "
                                    "cycles")
    serve_metrics.set_defaults(func=_cmd_serve_metrics)

    top = sub.add_parser(
        "top",
        help="live per-view QPS/latency/staleness table from an exporter",
    )
    top.add_argument("--url", default="http://127.0.0.1:9464",
                     help="exporter base URL (see serve-metrics)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between frames")
    top.add_argument("--frames", type=int, default=0,
                     help="frames to render (0 = until interrupted)")
    top.set_defaults(func=_cmd_top)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
